//! Multi-tenancy: a registry of independent databases behind one server.
//!
//! A [`Cluster`] maps database names to [`ShardedDb`] instances, each
//! with its own engine(s), WAL directory, snapshot cell, and dedup
//! tables — nothing is shared between tenants except the process-global
//! metrics registry (labeled per database) and, optionally, a
//! [`WorkerBudget`] bounding how many tenant workers commit concurrently,
//! so N databases never cost N × the configured thread budget.
//!
//! The cluster always contains the `default` database, which serves
//! connections that never issue `use <db>` — its storage is exactly the
//! legacy single-database layout, so a server upgraded in place keeps
//! byte-identical behavior. Named tenants live under the cluster's data
//! root, one directory per database, with the same storage knobs
//! (fsync policy, compaction, checkpoint mode, replay mode) as the
//! default.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, RwLock};

use strata_core::{MaintenanceError, StorageSpec, WalSpec};
use strata_datalog::Program;

use crate::shard::{DbOptions, ShardedDb};

/// The database every connection starts bound to.
pub const DEFAULT_DB: &str = "default";

/// Maximum tenant-name length.
pub const MAX_DB_NAME: usize = 64;

/// A counting semaphore bounding how many service workers *process
/// groups* concurrently. Worker threads exist per shard per tenant, but
/// an idle worker (blocked on its queue) holds no permit — only active
/// group commits count, so the budget caps CPU, not thread count.
pub struct WorkerBudget {
    limit: usize,
    active: Mutex<usize>,
    freed: Condvar,
}

impl WorkerBudget {
    /// A budget of `limit` concurrently active workers (min 1).
    pub fn new(limit: usize) -> Arc<WorkerBudget> {
        Arc::new(WorkerBudget { limit: limit.max(1), active: Mutex::new(0), freed: Condvar::new() })
    }

    /// The configured concurrency bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Workers currently holding a permit.
    pub fn active(&self) -> usize {
        *self.active.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Blocks until a permit is free, then takes it. The permit releases
    /// on drop.
    pub fn acquire(self: &Arc<Self>) -> BudgetPermit {
        let mut active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        while *active >= self.limit {
            active = self.freed.wait(active).unwrap_or_else(|p| p.into_inner());
        }
        *active += 1;
        BudgetPermit { budget: Arc::clone(self) }
    }
}

/// RAII permit from [`WorkerBudget::acquire`].
pub struct BudgetPermit {
    budget: Arc<WorkerBudget>,
}

impl Drop for BudgetPermit {
    fn drop(&mut self) {
        let mut active = self.budget.active.lock().unwrap_or_else(|p| p.into_inner());
        *active = active.saturating_sub(1);
        self.budget.freed.notify_one();
    }
}

/// One row of [`Cluster::list`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbInfo {
    /// Database name.
    pub name: String,
    /// Shards currently serving it.
    pub shards: u32,
    /// Facts in its published committed model.
    pub model_facts: usize,
}

/// The tenant registry: named databases plus the always-present
/// [`DEFAULT_DB`].
pub struct Cluster {
    dbs: RwLock<BTreeMap<String, Arc<ShardedDb>>>,
    /// Template knobs (strategy, shard target, queue, supervisor, faults,
    /// budget) applied to every tenant.
    opts: DbOptions,
    /// The default database's storage; doubles as the knob template for
    /// derived tenant specs.
    storage: StorageSpec,
    /// Where named tenants keep their stores (`<root>/<name>`); `None`
    /// puts every named tenant in memory.
    data_root: Option<PathBuf>,
}

impl Cluster {
    /// Opens a cluster whose `default` database is `seed` over `storage`
    /// (exactly a single-database server), with named tenants created
    /// under `data_root`.
    pub fn new(
        seed: Program,
        storage: StorageSpec,
        data_root: Option<PathBuf>,
        opts: DbOptions,
    ) -> Result<Arc<Cluster>, MaintenanceError> {
        let default = ShardedDb::open(seed, &storage, &opts)?;
        let mut dbs = BTreeMap::new();
        dbs.insert(DEFAULT_DB.to_string(), Arc::new(default));
        Ok(Arc::new(Cluster { dbs: RwLock::new(dbs), opts, storage, data_root }))
    }

    /// The storage a named tenant gets: `<data_root>/<name>` with the
    /// default database's WAL knobs; in-memory when the cluster has no
    /// data root.
    fn storage_for(&self, name: &str) -> StorageSpec {
        match &self.data_root {
            None => StorageSpec::Mem,
            Some(root) => {
                let mut spec = match &self.storage {
                    StorageSpec::Wal(w) => w.clone(),
                    StorageSpec::Mem => WalSpec::new(root),
                };
                spec.dir = root.join(name);
                StorageSpec::Wal(spec)
            }
        }
    }

    /// Creates (or reopens, if its directory already exists) the named
    /// database. Fails on an invalid name or one already serving.
    pub fn create(&self, name: &str) -> Result<Arc<ShardedDb>, String> {
        validate_name(name)?;
        let mut dbs = self.write();
        if dbs.contains_key(name) {
            return Err(format!("database {name} already exists"));
        }
        let storage = self.storage_for(name);
        let db = ShardedDb::open(Program::new(), &storage, &self.opts)
            .map_err(|e| format!("cannot open database {name}: {e}"))?;
        let db = Arc::new(db);
        dbs.insert(name.to_string(), Arc::clone(&db));
        Ok(db)
    }

    /// The named database, if serving.
    pub fn get(&self, name: &str) -> Option<Arc<ShardedDb>> {
        self.read().get(name).cloned()
    }

    /// The always-present default database.
    pub fn default_db(&self) -> Arc<ShardedDb> {
        self.get(DEFAULT_DB).expect("the default database cannot be dropped")
    }

    /// Every database, sorted by name, with its shard count and model
    /// size.
    pub fn list(&self) -> Vec<DbInfo> {
        self.read()
            .iter()
            .map(|(name, db)| DbInfo {
                name: name.clone(),
                shards: db.shards(),
                model_facts: db.snapshot().model_facts(),
            })
            .collect()
    }

    /// Drops a named database: refuses the default, refuses one still
    /// bound by a connection, otherwise drains its workers and removes
    /// its store directory from under the data root.
    pub fn drop_db(&self, name: &str) -> Result<(), String> {
        if name == DEFAULT_DB {
            return Err("cannot drop the default database".to_string());
        }
        let mut dbs = self.write();
        let db = dbs.get(name).ok_or_else(|| format!("no database named {name}"))?;
        // The registry holds one reference; every bound connection holds
        // another. Dropping a database out from under a live binding
        // would strand its requests, so refuse.
        if Arc::strong_count(db) > 1 {
            return Err(format!("database {name} is in use"));
        }
        let db = dbs.remove(name).expect("checked above");
        let db = Arc::try_unwrap(db).map_err(|_| format!("database {name} is in use"))?;
        db.shutdown();
        if let Some(root) = &self.data_root {
            let _ = std::fs::remove_dir_all(root.join(name));
        }
        Ok(())
    }

    /// Pushes every database's per-shard gauges into the global registry
    /// under `{db="…",shard="…"}` labels.
    pub fn fill_registry(&self) {
        for (name, db) in self.read().iter() {
            db.fill_registry(name);
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ShardedDb>>> {
        self.dbs.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<ShardedDb>>> {
        self.dbs.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Database names are `[a-z0-9_-]`, 1..=[`MAX_DB_NAME`] chars — safe as
/// directory names and wire tokens.
pub fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > MAX_DB_NAME {
        return Err(format!("invalid database name {name:?}: must be 1..={MAX_DB_NAME} chars"));
    }
    if !name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
    {
        return Err(format!("invalid database name {name:?}: use [a-z0-9_-] only"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use strata_core::{StorageSpec, Update};
    use strata_datalog::Fact;

    use crate::queue::Outcome;
    use crate::shard::DbOptions;

    fn mem_cluster() -> Arc<Cluster> {
        Cluster::new(
            Program::parse("e(1). p(X) :- e(X).").unwrap(),
            StorageSpec::Mem,
            None,
            DbOptions::new("cascade"),
        )
        .unwrap()
    }

    #[test]
    fn budget_bounds_concurrent_permits() {
        let budget = WorkerBudget::new(2);
        let a = budget.acquire();
        let b = budget.acquire();
        assert_eq!(budget.active(), 2);
        let (tx, rx) = std::sync::mpsc::channel();
        let waiter = {
            let budget = Arc::clone(&budget);
            std::thread::spawn(move || {
                let permit = budget.acquire();
                tx.send(()).unwrap();
                drop(permit);
            })
        };
        // The third acquire must block while two permits are out…
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        drop(a);
        // …and proceed as soon as one frees.
        assert!(rx.recv_timeout(Duration::from_secs(5)).is_ok());
        waiter.join().unwrap();
        drop(b);
        assert_eq!(budget.active(), 0);
    }

    #[test]
    fn name_validation() {
        for good in ["a", "tenant-1", "a_b-c", "x".repeat(MAX_DB_NAME).as_str()] {
            assert!(validate_name(good).is_ok(), "{good}");
        }
        for bad in ["", "Caps", "with space", "dot.dot", "../escape", "x".repeat(65).as_str()] {
            assert!(validate_name(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn cluster_lifecycle_and_isolation() {
        let cluster = mem_cluster();
        // The default database is always present and seeded.
        assert_eq!(cluster.default_db().snapshot().model_facts(), 2);
        // Create, list, duplicate-create.
        let t1 = cluster.create("tenant1").unwrap();
        assert!(cluster.create("tenant1").is_err(), "duplicate create must fail");
        assert!(cluster.create("Bad Name").is_err());
        let names: Vec<String> = cluster.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["default".to_string(), "tenant1".to_string()]);
        // Tenants are isolated: a write to tenant1 never shows in default.
        let ok = t1.submit(Update::InsertFact(Fact::parse("e(99)").unwrap())).wait();
        assert!(matches!(ok, Outcome::Accepted { .. }));
        t1.flush();
        assert_eq!(t1.snapshot().model_facts(), 1);
        assert_eq!(cluster.default_db().snapshot().model_facts(), 2);
        // Drop: refused while bound, refused for default, then clean.
        assert!(cluster.drop_db("default").is_err());
        assert!(cluster.drop_db("tenant1").is_err(), "t1 is still bound");
        drop(t1);
        cluster.drop_db("tenant1").unwrap();
        assert!(cluster.get("tenant1").is_none());
        assert!(cluster.drop_db("tenant1").is_err(), "already gone");
    }
}
