//! # strata-tms
//!
//! The two belief revision systems the paper builds on (§1, §6), implemented
//! from scratch:
//!
//! * [`jtms`] — Doyle's *justification-based* Truth Maintenance System
//!   (Doyle, AIJ 1979): nodes labeled IN/OUT, non-monotonic justifications
//!   with in-lists and out-lists, well-founded relabeling on change, and
//!   dependency-directed backtracking on contradictions.
//! * [`atms`] — de Kleer's *assumption-based* TMS (de Kleer, AIJ 1986):
//!   node labels are sets of minimal consistent environments (assumption
//!   sets); contradictions turn environments into nogoods that are pruned
//!   from every label. Multiple contexts coexist.
//!
//! [`bridge`] connects both to stratified databases: each ground rule
//! instance becomes a justification. For a stratified program the JTMS
//! labeling is unique and coincides with the standard model `M(P)` — the
//! observation behind the paper's support-based maintenance. The ATMS bridge
//! (definite programs) yields per-fact labels that are exactly the
//! *fact-level supports* the paper's §5.2 discusses and rejects as too
//! expensive for databases: complete (zero migration) but prohibitive.
//!
//! The paper's own comparison (§5.1): its one-level rule-pointer supports
//! are Doyle-style, while the §4.3 sets-of-sets supports "practically
//! maintain whole proof trees", the price de Kleer pays to keep multiple
//! contexts.

pub mod atms;
pub mod bridge;
pub mod jtms;

pub use atms::{Atms, AtmsNodeId, Env};
pub use jtms::{Jtms, JtmsNodeId, Justification, Label};
