//! Doyle's justification-based Truth Maintenance System (AIJ 1979).
//!
//! A JTMS maintains a *current belief set*: every node is labeled `IN`
//! (believed) or `OUT` (not believed). Beliefs are grounded in
//! **justifications** `(in-list | out-list) ⇒ consequent`: a justification
//! is *valid* when every in-list node is IN and every out-list node is OUT;
//! a node is IN iff it has a valid justification, and the labeling must be
//! **well-founded** — support may not run in circles.
//!
//! This implementation relabels the *affected region* on every change
//! (justification added or removed) with a three-valued fixpoint:
//! unaffected labels are frozen, affected nodes start `Unknown`, then
//! (1) a node with a justification whose in-list is all IN and out-list all
//! OUT becomes IN, (2) a node all of whose justifications are *refuted*
//! (some in-list node OUT / some out-list node IN) becomes OUT, and
//! (3) at fixpoint the remaining unknowns — nodes whose support runs only
//! through cycles — are unfounded: the lowest-numbered one is set OUT and
//! the fixpoint resumes. For inputs without cycles through out-lists (the
//! stratified case of the [`crate::bridge`]) the result is the unique
//! well-founded labeling; odd loops (`a ⇐ out(a)`) are reported as
//! [`RelabelOutcome::Unstable`].
//!
//! Contradiction nodes trigger **dependency-directed backtracking**
//! (Stallman & Sussman's technique as adapted by Doyle): the *maximal
//! assumptions* under the contradiction are located (IN nodes whose
//! supporting justification has a non-empty out-list), a culprit is chosen,
//! and a nogood justification is installed that forces one of its out-list
//! nodes IN, retracting the culprit.

use std::fmt;

use rustc_hash::FxHashSet;

/// A node handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct JtmsNodeId(pub u32);

/// A justification handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JustId(pub u32);

/// A belief label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Label {
    /// Believed: has well-founded valid support.
    In,
    /// Not believed.
    Out,
}

/// A justification `(in-list | out-list) ⇒ consequent`.
#[derive(Clone, Debug)]
pub struct Justification {
    /// Nodes that must be IN.
    pub in_list: Vec<JtmsNodeId>,
    /// Nodes that must be OUT (the non-monotonic part).
    pub out_list: Vec<JtmsNodeId>,
    /// The supported node.
    pub consequent: JtmsNodeId,
    /// A human-readable origin tag.
    pub informant: String,
}

struct NodeData {
    datum: String,
    label: Label,
    /// Justifications with this node as consequent.
    justs: Vec<JustId>,
    /// Justifications mentioning this node in a body list.
    consequences: Vec<JustId>,
    /// The valid justification currently supporting the node (IN nodes).
    support: Option<JustId>,
    is_contradiction: bool,
}

/// Result of relabeling after a change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelabelOutcome {
    /// A unique well-founded labeling of the affected region was found.
    Stable,
    /// An odd loop (a node depending on its own OUT-ness) prevented a stable
    /// labeling; the defaulted labeling violates some justification.
    Unstable,
}

/// Doyle's JTMS. See the module docs.
pub struct Jtms {
    nodes: Vec<NodeData>,
    justs: Vec<Justification>,
    /// Justifications removed by [`Jtms::remove_justification`].
    dead_justs: FxHashSet<u32>,
    /// Nogood justifications installed by backtracking.
    nogood_count: usize,
}

impl Default for Jtms {
    fn default() -> Jtms {
        Jtms::new()
    }
}

impl Jtms {
    /// An empty JTMS.
    pub fn new() -> Jtms {
        Jtms {
            nodes: Vec::new(),
            justs: Vec::new(),
            dead_justs: FxHashSet::default(),
            nogood_count: 0,
        }
    }

    /// Creates an OUT node carrying a display datum.
    pub fn create_node(&mut self, datum: impl Into<String>) -> JtmsNodeId {
        let id = JtmsNodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            datum: datum.into(),
            label: Label::Out,
            justs: Vec::new(),
            consequences: Vec::new(),
            support: None,
            is_contradiction: false,
        });
        id
    }

    /// Marks a node as a contradiction: whenever it goes IN,
    /// [`Jtms::backtrack`] can be used to restore consistency.
    pub fn mark_contradiction(&mut self, node: JtmsNodeId) {
        self.nodes[node.0 as usize].is_contradiction = true;
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The display datum of a node.
    pub fn datum(&self, node: JtmsNodeId) -> &str {
        &self.nodes[node.0 as usize].datum
    }

    /// Current label of a node.
    pub fn label(&self, node: JtmsNodeId) -> Label {
        self.nodes[node.0 as usize].label
    }

    /// Whether a node is currently believed.
    pub fn is_in(&self, node: JtmsNodeId) -> bool {
        self.label(node) == Label::In
    }

    /// The justification currently supporting a node (IN nodes only).
    pub fn support_of(&self, node: JtmsNodeId) -> Option<&Justification> {
        self.nodes[node.0 as usize].support.map(|j| &self.justs[j.0 as usize])
    }

    /// All currently IN contradiction nodes.
    pub fn active_contradictions(&self) -> Vec<JtmsNodeId> {
        (0..self.nodes.len() as u32)
            .map(JtmsNodeId)
            .filter(|&n| {
                let d = &self.nodes[n.0 as usize];
                d.is_contradiction && d.label == Label::In
            })
            .collect()
    }

    /// Number of nogood justifications installed by backtracking.
    pub fn nogood_count(&self) -> usize {
        self.nogood_count
    }

    /// Installs a *premise* justification (empty in/out lists): the node is
    /// unconditionally believed.
    pub fn assert_premise(&mut self, node: JtmsNodeId, informant: impl Into<String>) -> JustId {
        self.justify(node, Vec::new(), Vec::new(), informant)
    }

    /// Adds a justification and relabels the affected region.
    pub fn justify(
        &mut self,
        consequent: JtmsNodeId,
        in_list: Vec<JtmsNodeId>,
        out_list: Vec<JtmsNodeId>,
        informant: impl Into<String>,
    ) -> JustId {
        let id = JustId(self.justs.len() as u32);
        for &n in in_list.iter().chain(out_list.iter()) {
            self.nodes[n.0 as usize].consequences.push(id);
        }
        self.justs.push(Justification {
            in_list,
            out_list,
            consequent,
            informant: informant.into(),
        });
        self.nodes[consequent.0 as usize].justs.push(id);
        self.relabel_from(consequent);
        id
    }

    /// Removes a justification (rule deletion in the bridge) and relabels.
    pub fn remove_justification(&mut self, just: JustId) {
        if !self.dead_justs.insert(just.0) {
            return;
        }
        let consequent = self.justs[just.0 as usize].consequent;
        if self.nodes[consequent.0 as usize].support == Some(just) {
            self.nodes[consequent.0 as usize].support = None;
        }
        self.relabel_from(consequent);
    }

    /// The well-founded transitive foundations of an IN node: every node
    /// reachable through supporting justifications' in-lists.
    pub fn foundations(&self, node: JtmsNodeId) -> Vec<JtmsNodeId> {
        let mut seen = FxHashSet::default();
        let mut stack = vec![node];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            out.push(n);
            if let Some(j) = self.nodes[n.0 as usize].support {
                stack.extend(self.justs[j.0 as usize].in_list.iter().copied());
            }
        }
        out
    }

    /// Dependency-directed backtracking for an IN contradiction node:
    /// locates the assumptions in its foundations (IN nodes supported by a
    /// justification with a non-empty out-list), chooses the most recently
    /// created as the culprit, and installs a **nogood justification**
    /// deriving one of the culprit's out-list nodes from the remaining
    /// assumptions — which retracts the culprit. Returns the culprit, or
    /// `None` if the contradiction is OUT or rests on no assumption.
    pub fn backtrack(&mut self, contradiction: JtmsNodeId) -> Option<JtmsNodeId> {
        if !self.is_in(contradiction) {
            return None;
        }
        let mut assumptions: Vec<JtmsNodeId> = self
            .foundations(contradiction)
            .into_iter()
            .filter(|&n| {
                self.nodes[n.0 as usize]
                    .support
                    .is_some_and(|j| !self.justs[j.0 as usize].out_list.is_empty())
            })
            .collect();
        assumptions.sort();
        let culprit = *assumptions.last()?;
        let support = self.nodes[culprit.0 as usize].support.expect("culprit is IN");
        // Doyle: believe one of the out-list nodes of the culprit's support,
        // justified by the contradiction's other assumptions.
        let target = self.justs[support.0 as usize].out_list[0];
        let others: Vec<JtmsNodeId> =
            assumptions.iter().copied().filter(|&a| a != culprit).collect();
        self.nogood_count += 1;
        self.justify(target, others, Vec::new(), format!("nogood#{}", self.nogood_count));
        Some(culprit)
    }

    /// Relabels the region affected by a change at `origin` (three-valued
    /// fixpoint; see the module docs).
    fn relabel_from(&mut self, origin: JtmsNodeId) -> RelabelOutcome {
        // Affected region: origin plus everything reachable through
        // consequence justifications.
        let mut affected = FxHashSet::default();
        let mut stack = vec![origin];
        while let Some(n) = stack.pop() {
            if !affected.insert(n) {
                continue;
            }
            for &j in &self.nodes[n.0 as usize].consequences {
                if !self.dead_justs.contains(&j.0) {
                    stack.push(self.justs[j.0 as usize].consequent);
                }
            }
        }
        let mut order: Vec<JtmsNodeId> = affected.iter().copied().collect();
        order.sort();

        // Three-valued fixpoint over the affected region.
        let mut unknown: FxHashSet<JtmsNodeId> = affected.clone();
        for &n in &order {
            self.nodes[n.0 as usize].support = None;
        }
        loop {
            let mut changed = false;
            for &n in &order {
                if !unknown.contains(&n) {
                    continue;
                }
                if let Some((label, support)) = self.decide(n, &unknown) {
                    unknown.remove(&n);
                    self.nodes[n.0 as usize].label = label;
                    self.nodes[n.0 as usize].support = support;
                    changed = true;
                }
            }
            if !changed {
                if unknown.is_empty() {
                    break;
                }
                // Unfounded residue: default the lowest unknown to OUT.
                let &n = order.iter().find(|n| unknown.contains(n)).expect("non-empty");
                unknown.remove(&n);
                self.nodes[n.0 as usize].label = Label::Out;
                self.nodes[n.0 as usize].support = None;
            }
        }
        // Stability check: every live justification with a satisfied body
        // must have an IN consequent.
        for (i, j) in self.justs.iter().enumerate() {
            if self.dead_justs.contains(&(i as u32)) {
                continue;
            }
            let valid = j.in_list.iter().all(|&m| self.nodes[m.0 as usize].label == Label::In)
                && j.out_list.iter().all(|&m| self.nodes[m.0 as usize].label == Label::Out);
            if valid && self.nodes[j.consequent.0 as usize].label == Label::Out {
                return RelabelOutcome::Unstable;
            }
        }
        RelabelOutcome::Stable
    }

    /// Decides a node from the labels known so far: `Some(In)` as soon as a
    /// justification is satisfied, `Some(Out)` once every justification is
    /// refuted, `None` while undetermined.
    fn decide(
        &self,
        n: JtmsNodeId,
        unknown: &FxHashSet<JtmsNodeId>,
    ) -> Option<(Label, Option<JustId>)> {
        let mut all_refuted = true;
        for &j in &self.nodes[n.0 as usize].justs {
            if self.dead_justs.contains(&j.0) {
                continue;
            }
            let just = &self.justs[j.0 as usize];
            let in_ok = just
                .in_list
                .iter()
                .all(|&m| !unknown.contains(&m) && self.nodes[m.0 as usize].label == Label::In);
            let out_ok = just
                .out_list
                .iter()
                .all(|&m| !unknown.contains(&m) && self.nodes[m.0 as usize].label == Label::Out);
            if in_ok && out_ok {
                return Some((Label::In, Some(j)));
            }
            let refuted =
                just.in_list.iter().any(|&m| {
                    !unknown.contains(&m) && self.nodes[m.0 as usize].label == Label::Out
                }) || just
                    .out_list
                    .iter()
                    .any(|&m| !unknown.contains(&m) && self.nodes[m.0 as usize].label == Label::In);
            if !refuted {
                all_refuted = false;
            }
        }
        if all_refuted {
            Some((Label::Out, None))
        } else {
            None
        }
    }

    /// All currently IN nodes, in creation order.
    pub fn believed(&self) -> Vec<JtmsNodeId> {
        (0..self.nodes.len() as u32).map(JtmsNodeId).filter(|&n| self.is_in(n)).collect()
    }
}

impl fmt::Debug for Jtms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Jtms");
        s.field("nodes", &self.nodes.len());
        s.field("justs", &(self.justs.len() - self.dead_justs.len()));
        let believed: Vec<&str> = self.believed().iter().map(|&n| self.datum(n)).collect();
        s.field("believed", &believed);
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premise_is_believed() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        assert!(!tms.is_in(a));
        tms.assert_premise(a, "given");
        assert!(tms.is_in(a));
    }

    #[test]
    fn monotonic_chain_propagates() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        let c = tms.create_node("c");
        tms.justify(b, vec![a], vec![], "a=>b");
        tms.justify(c, vec![b], vec![], "b=>c");
        assert!(!tms.is_in(c));
        tms.assert_premise(a, "given");
        assert!(tms.is_in(a) && tms.is_in(b) && tms.is_in(c));
    }

    #[test]
    fn nonmonotonic_default_and_retraction() {
        // b holds by default (a OUT); asserting a retracts b.
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        tms.justify(b, vec![], vec![a], "default b");
        assert!(tms.is_in(b));
        tms.assert_premise(a, "observation");
        assert!(tms.is_in(a));
        assert!(!tms.is_in(b), "default must be retracted");
    }

    #[test]
    fn alternating_chain_like_paper_example2() {
        // p1 ⇐ out(p0), p2 ⇐ out(p1), p3 ⇐ out(p2): believe p1, p3.
        let mut tms = Jtms::new();
        let p: Vec<_> = (0..4).map(|i| tms.create_node(format!("p{i}"))).collect();
        for i in 1..4 {
            tms.justify(p[i], vec![], vec![p[i - 1]], format!("chain{i}"));
        }
        assert!(!tms.is_in(p[0]) && tms.is_in(p[1]) && !tms.is_in(p[2]) && tms.is_in(p[3]));
        // Asserting p0 flips the chain.
        tms.assert_premise(p[0], "given");
        assert!(tms.is_in(p[0]) && !tms.is_in(p[1]) && tms.is_in(p[2]) && !tms.is_in(p[3]));
    }

    #[test]
    fn positive_cycle_is_unfounded() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        tms.justify(a, vec![b], vec![], "b=>a");
        tms.justify(b, vec![a], vec![], "a=>b");
        assert!(!tms.is_in(a) && !tms.is_in(b), "circular support is no support");
        // External support grounds the cycle.
        let c = tms.create_node("c");
        tms.justify(a, vec![c], vec![], "c=>a");
        tms.assert_premise(c, "given");
        assert!(tms.is_in(a) && tms.is_in(b));
    }

    #[test]
    fn removing_justification_unwinds_support() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        let j = tms.justify(b, vec![a], vec![], "a=>b");
        tms.assert_premise(a, "given");
        assert!(tms.is_in(b));
        tms.remove_justification(j);
        assert!(!tms.is_in(b));
        assert!(tms.is_in(a));
        // Removing twice is a no-op.
        tms.remove_justification(j);
        assert!(!tms.is_in(b));
    }

    #[test]
    fn alternative_justification_survives_removal() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        let c = tms.create_node("c");
        let j1 = tms.justify(c, vec![a], vec![], "a=>c");
        tms.justify(c, vec![b], vec![], "b=>c");
        tms.assert_premise(a, "p");
        tms.assert_premise(b, "p");
        tms.remove_justification(j1);
        assert!(tms.is_in(c), "second justification keeps c IN");
    }

    #[test]
    fn well_founded_support_is_acyclic() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        let c = tms.create_node("c");
        tms.justify(a, vec![b], vec![], "b=>a");
        tms.justify(b, vec![a], vec![], "a=>b");
        tms.justify(a, vec![c], vec![], "c=>a");
        tms.assert_premise(c, "given");
        // a's support must be the grounded justification (via c), never the
        // circular one.
        let sup = tms.support_of(a).unwrap();
        assert_eq!(sup.in_list, vec![c]);
        let foundations = tms.foundations(b);
        assert!(foundations.contains(&c));
    }

    #[test]
    fn contradiction_backtracking_retracts_assumption() {
        // Assume "dry" by default; premise "rain" plus dry is contradictory.
        let mut tms = Jtms::new();
        let rain = tms.create_node("rain");
        let not_rain = tms.create_node("not_rain");
        let dry = tms.create_node("dry");
        let boom = tms.create_node("contradiction");
        tms.mark_contradiction(boom);
        tms.justify(dry, vec![], vec![not_rain], "assume dry unless told otherwise");
        tms.assert_premise(rain, "observation");
        tms.justify(boom, vec![rain, dry], vec![], "rain & dry is absurd");
        assert!(tms.is_in(boom));
        let culprit = tms.backtrack(boom).expect("an assumption exists");
        assert_eq!(culprit, dry);
        assert!(!tms.is_in(boom), "contradiction resolved");
        assert!(!tms.is_in(dry), "culprit retracted");
        assert!(tms.is_in(not_rain), "nogood belief installed");
        assert_eq!(tms.nogood_count(), 1);
        assert!(tms.active_contradictions().is_empty());
    }

    #[test]
    fn backtrack_without_assumptions_reports_none() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let boom = tms.create_node("boom");
        tms.mark_contradiction(boom);
        tms.assert_premise(a, "p");
        tms.justify(boom, vec![a], vec![], "a alone is absurd");
        // The contradiction rests only on a premise: nothing to retract.
        assert_eq!(tms.backtrack(boom), None);
        assert!(tms.is_in(boom));
    }

    #[test]
    fn odd_loop_reported_unstable() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        // a ⇐ out(a): no stable labeling exists.
        tms.justify(a, vec![], vec![a], "liar");
        assert_eq!(tms.relabel_from(a), RelabelOutcome::Unstable);
    }

    #[test]
    fn believed_lists_in_nodes() {
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        tms.assert_premise(b, "p");
        assert_eq!(tms.believed(), vec![b]);
        tms.assert_premise(a, "p");
        assert_eq!(tms.believed(), vec![a, b]);
        assert_eq!(tms.datum(a), "a");
    }

    #[test]
    fn debug_format_shows_believed() {
        let mut tms = Jtms::new();
        let a = tms.create_node("alpha");
        tms.assert_premise(a, "p");
        let s = format!("{tms:?}");
        assert!(s.contains("alpha"));
    }

    #[test]
    fn even_loop_through_out_lists_defaults_deterministically() {
        // a ⇐ out(b), b ⇐ out(a): two stable labelings exist; the
        // implementation defaults the lowest node OUT first, so b ends IN.
        let mut tms = Jtms::new();
        let a = tms.create_node("a");
        let b = tms.create_node("b");
        tms.justify(a, vec![], vec![b], "default a");
        tms.justify(b, vec![], vec![a], "default b");
        assert!(tms.is_in(a) != tms.is_in(b), "exactly one side of the even loop");
    }
}
