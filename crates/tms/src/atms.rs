//! De Kleer's assumption-based Truth Maintenance System (AIJ 1986).
//!
//! Where a JTMS commits to one belief set, the ATMS keeps **every context**
//! at once: each node carries a *label* — the set of minimal, consistent
//! **environments** (sets of assumptions) under which the node holds. A
//! node holds in a context iff some label environment is a subset of the
//! context's assumptions.
//!
//! Justifications here are monotonic (`antecedents ⇒ consequent`); the
//! non-monotonicity lives in contradiction handling: deriving the dedicated
//! contradiction node under an environment makes that environment a
//! **nogood**, and every environment subsumed by a nogood is pruned from
//! every label.
//!
//! The four label invariants of de Kleer's paper are maintained eagerly:
//! *soundness* (each environment really derives the node), *consistency*
//! (no environment is a nogood superset), *minimality* (no environment
//! subsumes another), and *completeness* (every derivable environment is a
//! superset of some label member). The paper's §5.2 connection: ATMS labels
//! over fact assumptions are exactly the "supports in which not relations
//! but facts are recorded" that would give a migration-free maintenance
//! solution at prohibitive bookkeeping cost.

use std::fmt;

/// A node handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AtmsNodeId(pub u32);

/// An environment: a sorted set of assumption node ids.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Env {
    ids: Box<[u32]>,
}

impl Env {
    /// The empty environment (holds universally).
    pub fn empty() -> Env {
        Env::default()
    }

    /// An environment from assumption ids (deduplicated, sorted).
    pub fn from_ids(mut ids: Vec<u32>) -> Env {
        ids.sort_unstable();
        ids.dedup();
        Env { ids: ids.into_boxed_slice() }
    }

    /// Number of assumptions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether this is the empty environment.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The assumption ids, sorted.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Subset test (both sides sorted: linear merge).
    pub fn is_subset(&self, other: &Env) -> bool {
        let mut it = other.ids.iter();
        'outer: for &a in self.ids.iter() {
            for &b in it.by_ref() {
                match b.cmp(&a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Set union (sorted merge).
    pub fn union(&self, other: &Env) -> Env {
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        Env { ids: out.into_boxed_slice() }
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "A{id}")?;
        }
        write!(f, "}}")
    }
}

/// A label: an antichain of minimal environments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelSet {
    envs: Vec<Env>,
}

impl LabelSet {
    /// The empty label (the node holds nowhere).
    pub fn new() -> LabelSet {
        LabelSet::default()
    }

    /// The member environments.
    pub fn envs(&self) -> &[Env] {
        &self.envs
    }

    /// Whether the label is empty.
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Inserts an environment, maintaining minimality. Returns `true` if the
    /// label changed (i.e. `env` was not subsumed).
    pub fn insert_minimal(&mut self, env: Env) -> bool {
        if self.envs.iter().any(|e| e.is_subset(&env)) {
            return false;
        }
        self.envs.retain(|e| !env.is_subset(e));
        self.envs.push(env);
        true
    }

    /// Removes every environment for which `f` holds; reports change.
    pub fn retain_not(&mut self, mut f: impl FnMut(&Env) -> bool) -> bool {
        let before = self.envs.len();
        self.envs.retain(|e| !f(e));
        self.envs.len() != before
    }

    /// Whether some member is a subset of `env` (the node holds in `env`).
    pub fn covers(&self, env: &Env) -> bool {
        self.envs.iter().any(|e| e.is_subset(env))
    }
}

struct NodeData {
    datum: String,
    label: LabelSet,
    /// Justifications with this node among the antecedents.
    consequences: Vec<u32>,
    /// Whether this node is an assumption.
    assumption: bool,
}

struct JustData {
    antecedents: Vec<AtmsNodeId>,
    consequent: AtmsNodeId,
    #[allow(dead_code)] // retained for explanations / debugging output
    informant: String,
}

/// De Kleer's ATMS. See the module docs.
pub struct Atms {
    nodes: Vec<NodeData>,
    justs: Vec<JustData>,
    contradiction: AtmsNodeId,
    /// Minimal nogood environments.
    nogoods: LabelSet,
}

impl Default for Atms {
    fn default() -> Atms {
        Atms::new()
    }
}

impl Atms {
    /// An empty ATMS with its dedicated contradiction node.
    pub fn new() -> Atms {
        let mut atms = Atms {
            nodes: Vec::new(),
            justs: Vec::new(),
            contradiction: AtmsNodeId(0),
            nogoods: LabelSet::new(),
        };
        atms.contradiction = atms.create_node("⊥");
        atms
    }

    /// The dedicated contradiction node; justify it to declare nogoods.
    pub fn contradiction(&self) -> AtmsNodeId {
        self.contradiction
    }

    /// Creates a non-assumption node with an empty label.
    pub fn create_node(&mut self, datum: impl Into<String>) -> AtmsNodeId {
        let id = AtmsNodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            datum: datum.into(),
            label: LabelSet::new(),
            consequences: Vec::new(),
            assumption: false,
        });
        id
    }

    /// Creates an assumption: a node whose label is `{{self}}`.
    pub fn create_assumption(&mut self, datum: impl Into<String>) -> AtmsNodeId {
        let id = self.create_node(datum);
        let d = &mut self.nodes[id.0 as usize];
        d.assumption = true;
        d.label.insert_minimal(Env::from_ids(vec![id.0]));
        id
    }

    /// Whether `node` is an assumption.
    pub fn is_assumption(&self, node: AtmsNodeId) -> bool {
        self.nodes[node.0 as usize].assumption
    }

    /// The display datum of a node.
    pub fn datum(&self, node: AtmsNodeId) -> &str {
        &self.nodes[node.0 as usize].datum
    }

    /// The label of a node: its minimal consistent environments.
    pub fn label(&self, node: AtmsNodeId) -> &[Env] {
        self.nodes[node.0 as usize].label.envs()
    }

    /// Whether the node holds in *some* consistent environment.
    pub fn is_believed_somewhere(&self, node: AtmsNodeId) -> bool {
        !self.nodes[node.0 as usize].label.is_empty()
    }

    /// Whether the node holds under `env` (some label member ⊆ `env`).
    pub fn holds_in(&self, node: AtmsNodeId, env: &Env) -> bool {
        self.nodes[node.0 as usize].label.covers(env)
    }

    /// The minimal nogood environments discovered so far.
    pub fn nogoods(&self) -> &[Env] {
        self.nogoods.envs()
    }

    /// Whether `env` is inconsistent (a superset of some nogood).
    pub fn is_nogood(&self, env: &Env) -> bool {
        self.nogoods.covers(env)
    }

    /// Adds a monotonic justification `antecedents ⇒ consequent` and
    /// propagates labels. Premises are encoded as an empty antecedent list
    /// (label gains the empty environment). Justifying the
    /// [`Atms::contradiction`] node declares its environments nogood.
    pub fn justify(
        &mut self,
        consequent: AtmsNodeId,
        antecedents: Vec<AtmsNodeId>,
        informant: impl Into<String>,
    ) {
        let id = self.justs.len() as u32;
        for &a in &antecedents {
            self.nodes[a.0 as usize].consequences.push(id);
        }
        self.justs.push(JustData { antecedents, consequent, informant: informant.into() });
        self.propagate(id);
    }

    /// Recomputes the contribution of justification `id` and propagates any
    /// label growth through the justification graph.
    fn propagate(&mut self, id: u32) {
        let mut queue = vec![id];
        while let Some(jid) = queue.pop() {
            let (consequent, new_envs) = {
                let j = &self.justs[jid as usize];
                (j.consequent, self.cross_product(&j.antecedents))
            };
            let mut changed = false;
            if consequent == self.contradiction {
                for env in new_envs {
                    if self.add_nogood(env) {
                        changed = true;
                    }
                }
                if changed {
                    // Nogoods prune labels globally; everything downstream of
                    // pruned nodes keeps a sound (smaller) label, so no
                    // further propagation is needed for completeness.
                }
                continue;
            }
            for env in new_envs {
                if self.nogoods.covers(&env) {
                    continue;
                }
                if self.nodes[consequent.0 as usize].label.insert_minimal(env) {
                    changed = true;
                }
            }
            if changed {
                queue.extend(self.nodes[consequent.0 as usize].consequences.iter().copied());
            }
        }
    }

    /// All unions of one environment per antecedent label (the label of a
    /// conjunction). An empty antecedent list yields the empty environment.
    fn cross_product(&self, antecedents: &[AtmsNodeId]) -> Vec<Env> {
        let mut acc = vec![Env::empty()];
        for &a in antecedents {
            let label = self.nodes[a.0 as usize].label.envs();
            if label.is_empty() {
                return Vec::new();
            }
            let mut next = Vec::with_capacity(acc.len() * label.len());
            for base in &acc {
                for env in label {
                    next.push(base.union(env));
                }
            }
            acc = next;
        }
        acc
    }

    /// Records `env` as nogood and prunes it from every label. Returns
    /// whether the nogood set changed.
    fn add_nogood(&mut self, env: Env) -> bool {
        if !self.nogoods.insert_minimal(env.clone()) {
            return false;
        }
        for node in &mut self.nodes {
            node.label.retain_not(|e| env.is_subset(e));
        }
        true
    }

    /// Nodes holding under `env`, in creation order (the *context* of `env`).
    pub fn context_of(&self, env: &Env) -> Vec<AtmsNodeId> {
        (0..self.nodes.len() as u32)
            .map(AtmsNodeId)
            .filter(|&n| n != self.contradiction && self.holds_in(n, env))
            .collect()
    }

    /// Number of nodes, including the contradiction node.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total environments across all labels (a bookkeeping-size metric).
    pub fn total_label_size(&self) -> usize {
        self.nodes.iter().map(|n| n.label.envs().len()).sum()
    }
}

impl fmt::Debug for Atms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Atms");
        s.field("nodes", &self.nodes.len());
        s.field("justs", &self.justs.len());
        s.field("nogoods", &self.nogoods.envs().len());
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ids: &[u32]) -> Env {
        Env::from_ids(ids.to_vec())
    }

    #[test]
    fn env_set_operations() {
        let a = env(&[1, 3]);
        let b = env(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(Env::empty().is_subset(&a));
        assert_eq!(a.union(&env(&[2])), b);
        assert_eq!(env(&[3, 1, 3]).ids(), &[1, 3]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn label_minimality() {
        let mut l = LabelSet::new();
        assert!(l.insert_minimal(env(&[1, 2])));
        assert!(!l.insert_minimal(env(&[1, 2, 3])), "superset rejected");
        assert!(l.insert_minimal(env(&[1])), "subset evicts");
        assert_eq!(l.envs(), &[env(&[1])]);
        assert!(l.insert_minimal(env(&[4])));
        assert_eq!(l.envs().len(), 2);
    }

    #[test]
    fn assumption_has_unit_label() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        assert!(atms.is_assumption(a));
        assert_eq!(atms.label(a), &[env(&[a.0])]);
        assert_eq!(atms.datum(a), "a");
    }

    #[test]
    fn derived_label_is_union_of_antecedents() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        let b = atms.create_assumption("b");
        let c = atms.create_node("c");
        atms.justify(c, vec![a, b], "a&b=>c");
        assert_eq!(atms.label(c), &[env(&[a.0, b.0])]);
        assert!(atms.holds_in(c, &env(&[a.0, b.0])));
        assert!(!atms.holds_in(c, &env(&[a.0])));
    }

    #[test]
    fn disjunction_gives_two_minimal_envs() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        let b = atms.create_assumption("b");
        let c = atms.create_node("c");
        atms.justify(c, vec![a], "a=>c");
        atms.justify(c, vec![b], "b=>c");
        assert_eq!(atms.label(c).len(), 2);
        assert!(atms.holds_in(c, &env(&[a.0])));
        assert!(atms.holds_in(c, &env(&[b.0])));
    }

    #[test]
    fn premise_holds_universally() {
        let mut atms = Atms::new();
        let p = atms.create_node("p");
        atms.justify(p, vec![], "premise");
        assert_eq!(atms.label(p), &[Env::empty()]);
        assert!(atms.holds_in(p, &Env::empty()));
    }

    #[test]
    fn label_propagates_through_chains() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        let b = atms.create_node("b");
        let c = atms.create_node("c");
        atms.justify(c, vec![b], "b=>c"); // added before b has a label
        atms.justify(b, vec![a], "a=>b");
        assert_eq!(atms.label(c), &[env(&[a.0])], "late antecedent label must propagate");
    }

    #[test]
    fn nogood_prunes_labels_and_contexts() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        let b = atms.create_assumption("b");
        let c = atms.create_node("c");
        atms.justify(c, vec![a, b], "a&b=>c");
        // Declare {a, b} inconsistent.
        let boom = atms.contradiction();
        atms.justify(boom, vec![a, b], "a&b absurd");
        assert!(atms.is_nogood(&env(&[a.0, b.0])));
        assert!(atms.label(c).is_empty(), "c's only environment died");
        assert!(!atms.is_believed_somewhere(c));
        // Individual assumptions stay consistent.
        assert!(atms.holds_in(a, &env(&[a.0])));
    }

    #[test]
    fn nogood_blocks_future_environments() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        let b = atms.create_assumption("b");
        let boom = atms.contradiction();
        atms.justify(boom, vec![a, b], "absurd");
        // A node derived afterwards from a&b gains no environment.
        let d = atms.create_node("d");
        atms.justify(d, vec![a, b], "a&b=>d");
        assert!(atms.label(d).is_empty());
    }

    #[test]
    fn multiple_contexts_coexist() {
        // The de Kleer signature: incompatible assumptions keep separate
        // contexts alive simultaneously.
        let mut atms = Atms::new();
        let day = atms.create_assumption("day");
        let night = atms.create_assumption("night");
        let boom = atms.contradiction();
        atms.justify(boom, vec![day, night], "day&night absurd");
        let bright = atms.create_node("bright");
        let dark = atms.create_node("dark");
        atms.justify(bright, vec![day], "day=>bright");
        atms.justify(dark, vec![night], "night=>dark");
        assert!(atms.holds_in(bright, &env(&[day.0])));
        assert!(atms.holds_in(dark, &env(&[night.0])));
        let ctx = atms.context_of(&env(&[day.0]));
        assert!(ctx.contains(&day) && ctx.contains(&bright));
        assert!(!ctx.contains(&dark));
    }

    #[test]
    fn minimal_env_survives_when_larger_dies() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        let b = atms.create_assumption("b");
        let c = atms.create_assumption("c");
        let n = atms.create_node("n");
        atms.justify(n, vec![a, b], "ab=>n");
        atms.justify(n, vec![c], "c=>n");
        let boom = atms.contradiction();
        atms.justify(boom, vec![a, b], "ab absurd");
        assert_eq!(atms.label(n), &[env(&[c.0])]);
        assert!(atms.is_believed_somewhere(n));
    }

    #[test]
    fn total_label_size_counts_envs() {
        let mut atms = Atms::new();
        let a = atms.create_assumption("a");
        let b = atms.create_assumption("b");
        let n = atms.create_node("n");
        atms.justify(n, vec![a], "1");
        atms.justify(n, vec![b], "2");
        // a, b each 1 env + n's 2.
        assert_eq!(atms.total_label_size(), 4);
        assert_eq!(atms.num_nodes(), 4); // incl. ⊥
        let s = format!("{atms:?}");
        assert!(s.contains("nogoods"));
    }
}
