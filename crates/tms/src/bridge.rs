//! The bridge between stratified databases and truth maintenance.
//!
//! The paper's §1 observes that maintaining `M(P)` "directly relates" to
//! Doyle's and de Kleer's systems, differing in how supports are built and
//! used. This module makes the relation executable:
//!
//! * [`JtmsBridge`] encodes every ground rule instance `p ⇐ q₁…qᵢ, ¬r₁…rⱼ`
//!   as a JTMS justification with in-list `{q₁…qᵢ}` and out-list `{r₁…rⱼ}`;
//!   asserted facts become premises. For a **stratified** program the JTMS
//!   labeling is unique and the IN set *is* `M(P)` (checked by tests and by
//!   `tests/tms_correspondence.rs`). Fact updates map to premise changes.
//!
//! * [`FactSupports`] uses an ATMS with one assumption per asserted fact
//!   over a **definite** (negation-free) program: each model fact's label
//!   lists the minimal sets of asserted facts deriving it. These are
//!   exactly the *fact-level supports* of the paper's §5.2 — "this form of
//!   supports … would lead to a solution with no migration" — and the
//!   experiment harness uses them to measure the bookkeeping cost the paper
//!   predicts is "clearly too prohibitive … when many facts are present".

use rustc_hash::FxHashMap;

use strata_datalog::ground::{ground_program, GroundingBudgetExceeded};
use strata_datalog::{Fact, Program};

use crate::atms::{Atms, AtmsNodeId, Env};
use crate::jtms::{Jtms, JtmsNodeId, JustId};

/// A stratified database encoded as a Doyle JTMS.
#[derive(Debug)]
pub struct JtmsBridge {
    tms: Jtms,
    node_of: FxHashMap<Fact, JtmsNodeId>,
    /// The premise justification per asserted fact (for retraction).
    premise_of: FxHashMap<Fact, JustId>,
}

impl JtmsBridge {
    /// Grounds `program` (within `budget` instances) and encodes it.
    pub fn new(program: &Program, budget: usize) -> Result<JtmsBridge, GroundingBudgetExceeded> {
        let ground = ground_program(program, budget)?;
        let mut bridge = JtmsBridge {
            tms: Jtms::new(),
            node_of: FxHashMap::default(),
            premise_of: FxHashMap::default(),
        };
        // Create nodes for every atom mentioned anywhere.
        for rule in &ground {
            for f in std::iter::once(&rule.head).chain(rule.pos.iter()).chain(rule.neg.iter()) {
                bridge.node(f);
            }
        }
        // One justification per ground instance: in = pos, out = neg.
        for rule in &ground {
            let consequent = bridge.node(&rule.head);
            let in_list = rule.pos.iter().map(|f| bridge.node(f)).collect();
            let out_list = rule.neg.iter().map(|f| bridge.node(f)).collect();
            bridge.tms.justify(consequent, in_list, out_list, rule.to_string());
        }
        // Asserted facts are premises.
        for f in program.facts() {
            bridge.assert_fact(f.clone());
        }
        Ok(bridge)
    }

    fn node(&mut self, f: &Fact) -> JtmsNodeId {
        if let Some(&n) = self.node_of.get(f) {
            return n;
        }
        let n = self.tms.create_node(f.to_string());
        self.node_of.insert(f.clone(), n);
        n
    }

    /// Asserts a fact (installs a premise justification). Idempotent.
    pub fn assert_fact(&mut self, f: Fact) {
        if self.premise_of.contains_key(&f) {
            return;
        }
        let n = self.node(&f);
        let j = self.tms.assert_premise(n, format!("asserted {f}"));
        self.premise_of.insert(f, j);
    }

    /// Retracts an asserted fact (removes its premise justification).
    /// Returns `false` if the fact was not asserted.
    pub fn retract_fact(&mut self, f: &Fact) -> bool {
        let Some(j) = self.premise_of.remove(f) else {
            return false;
        };
        self.tms.remove_justification(j);
        true
    }

    /// Whether the fact is currently believed.
    pub fn believes(&self, f: &Fact) -> bool {
        self.node_of.get(f).is_some_and(|&n| self.tms.is_in(n))
    }

    /// Every believed fact, sorted (the JTMS image of `M(P)`).
    pub fn believed_facts(&self) -> Vec<Fact> {
        let mut out: Vec<Fact> = self
            .node_of
            .iter()
            .filter(|(_, &n)| self.tms.is_in(n))
            .map(|(f, _)| f.clone())
            .collect();
        out.sort();
        out
    }

    /// The underlying TMS (for inspection).
    pub fn tms(&self) -> &Jtms {
        &self.tms
    }
}

/// Fact-level supports via an ATMS over a definite program (§5.2).
#[derive(Debug)]
pub struct FactSupports {
    atms: Atms,
    node_of: FxHashMap<Fact, AtmsNodeId>,
    assumption_of: FxHashMap<Fact, AtmsNodeId>,
}

/// The error returned when a program with negation is offered to
/// [`FactSupports`] (the classic ATMS is monotonic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FactSupportsError {
    /// The program contains a negative literal.
    NotDefinite(String),
    /// Grounding exceeded its instance budget.
    Grounding(GroundingBudgetExceeded),
}

impl std::fmt::Display for FactSupportsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactSupportsError::NotDefinite(rule) => {
                write!(f, "ATMS fact supports need a definite program; `{rule}` negates")
            }
            FactSupportsError::Grounding(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FactSupportsError {}

impl FactSupports {
    /// Grounds a definite `program` and computes every fact's minimal
    /// asserted-fact support sets.
    pub fn new(program: &Program, budget: usize) -> Result<FactSupports, FactSupportsError> {
        for (_, rule) in program.rules() {
            if rule.body.iter().any(|l| !l.positive) {
                return Err(FactSupportsError::NotDefinite(rule.to_string()));
            }
        }
        let ground = ground_program(program, budget).map_err(FactSupportsError::Grounding)?;
        let mut fs = FactSupports {
            atms: Atms::new(),
            node_of: FxHashMap::default(),
            assumption_of: FxHashMap::default(),
        };
        // Assumptions first: one per asserted fact.
        for f in program.facts() {
            let a = fs.atms.create_assumption(f.to_string());
            fs.assumption_of.insert(f.clone(), a);
            fs.node_of.insert(f.clone(), a);
        }
        for rule in &ground {
            let consequent = fs.node(&rule.head);
            let antecedents = rule.pos.iter().map(|f| fs.node(f)).collect();
            fs.atms.justify(consequent, antecedents, rule.to_string());
        }
        Ok(fs)
    }

    fn node(&mut self, f: &Fact) -> AtmsNodeId {
        if let Some(&n) = self.node_of.get(f) {
            return n;
        }
        let n = self.atms.create_node(f.to_string());
        self.node_of.insert(f.clone(), n);
        n
    }

    /// The minimal sets of asserted facts each deriving `f`; empty slice if
    /// `f` is not derivable.
    pub fn supports_of(&self, f: &Fact) -> Vec<Vec<Fact>> {
        let Some(&n) = self.node_of.get(f) else { return Vec::new() };
        let id_to_fact: FxHashMap<u32, &Fact> =
            self.assumption_of.iter().map(|(f, a)| (a.0, f)).collect();
        self.atms
            .label(n)
            .iter()
            .map(|env| {
                let mut facts: Vec<Fact> =
                    env.ids().iter().map(|id| (*id_to_fact[id]).clone()).collect();
                facts.sort();
                facts
            })
            .collect()
    }

    /// Whether `f` remains derivable after deleting `deleted` — *without
    /// recomputation*: true iff some support set avoids every deleted fact.
    /// This is the §5.2 migration-free removal test.
    pub fn survives_deletion(&self, f: &Fact, deleted: &[Fact]) -> bool {
        let Some(&n) = self.node_of.get(f) else { return false };
        let deleted_ids: Vec<u32> =
            deleted.iter().filter_map(|d| self.assumption_of.get(d).map(|a| a.0)).collect();
        self.atms.label(n).iter().any(|env| deleted_ids.iter().all(|id| !env.ids().contains(id)))
    }

    /// Facts currently derivable in the full context, sorted.
    pub fn derivable_facts(&self) -> Vec<Fact> {
        let full = Env::from_ids(self.assumption_of.values().map(|a| a.0).collect());
        let mut out: Vec<Fact> = self
            .node_of
            .iter()
            .filter(|(_, &n)| self.atms.holds_in(n, &full))
            .map(|(f, _)| f.clone())
            .collect();
        out.sort();
        out
    }

    /// Total environments stored across all labels — the bookkeeping-size
    /// metric for the §5.2 trade-off experiment.
    pub fn bookkeeping_size(&self) -> usize {
        self.atms.total_label_size()
    }

    /// The underlying ATMS (for inspection).
    pub fn atms(&self) -> &Atms {
        &self.atms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_datalog::model::StandardModel;

    fn fact(s: &str) -> Fact {
        Fact::parse(s).unwrap()
    }

    /// The JTMS IN-set must equal M(P) on stratified programs.
    fn assert_jtms_matches_model(src: &str) {
        let program = Program::parse(src).unwrap();
        let bridge = JtmsBridge::new(&program, 100_000).unwrap();
        let model = StandardModel::compute(&program).unwrap();
        let mut expected: Vec<Fact> = model.db().iter_facts().collect();
        expected.sort();
        assert_eq!(bridge.believed_facts(), expected, "JTMS ≠ M(P) on {src}");
    }

    #[test]
    fn jtms_matches_pods_model() {
        assert_jtms_matches_model(
            "submitted(1). submitted(2). submitted(3). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
    }

    #[test]
    fn jtms_matches_chain_model() {
        assert_jtms_matches_model("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
    }

    #[test]
    fn jtms_matches_cascade_demo() {
        assert_jtms_matches_model("r :- p. q :- r. q :- !p.");
    }

    #[test]
    fn jtms_matches_recursive_program() {
        assert_jtms_matches_model(
            "e(1, 2). e(2, 3). n(1). n(2). n(3). n(4).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).
             iso(X) :- n(X), !covered(X). covered(X) :- p(X, Y).",
        );
    }

    #[test]
    fn jtms_updates_track_model_updates() {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let mut bridge = JtmsBridge::new(&program, 100_000).unwrap();
        assert!(bridge.believes(&fact("rejected(1)")));
        // Insert accepted(1): rejected(1) must leave the belief set.
        bridge.assert_fact(fact("accepted(1)"));
        assert!(!bridge.believes(&fact("rejected(1)")));
        assert!(bridge.believes(&fact("accepted(1)")));
        // Retract it again.
        assert!(bridge.retract_fact(&fact("accepted(1)")));
        assert!(bridge.believes(&fact("rejected(1)")));
        assert!(!bridge.retract_fact(&fact("accepted(1)")), "double retract");
        // The new belief set matches the recomputed model.
        let model = StandardModel::compute(&program).unwrap();
        let mut expected: Vec<Fact> = model.db().iter_facts().collect();
        expected.sort();
        assert_eq!(bridge.believed_facts(), expected);
    }

    #[test]
    fn fact_supports_requires_definite_program() {
        let p = Program::parse("e(1). q(X) :- e(X), !r(X).").unwrap();
        let err = FactSupports::new(&p, 1000).unwrap_err();
        assert!(matches!(err, FactSupportsError::NotDefinite(_)));
        assert!(err.to_string().contains("definite"));
    }

    #[test]
    fn fact_supports_lists_minimal_assumption_sets() {
        let p = Program::parse(
            "a(1). b(1). c(1).
             p(X) :- a(X), b(X).
             p(X) :- c(X).",
        )
        .unwrap();
        let fs = FactSupports::new(&p, 1000).unwrap();
        let sups = fs.supports_of(&fact("p(1)"));
        assert_eq!(sups.len(), 2);
        // Support facts sort by interner id: compare order-insensitively.
        let mut ab = vec![fact("a(1)"), fact("b(1)")];
        ab.sort();
        assert!(sups.contains(&ab));
        assert!(sups.contains(&vec![fact("c(1)")]));
    }

    #[test]
    fn survives_deletion_is_migration_free() {
        let p = Program::parse(
            "a(1). c(1).
             p(X) :- a(X).
             p(X) :- c(X).
             q(X) :- p(X).",
        )
        .unwrap();
        let fs = FactSupports::new(&p, 1000).unwrap();
        // Deleting a(1): p(1) and q(1) survive via c(1) — decided from the
        // labels alone, no saturation, no migration.
        assert!(fs.survives_deletion(&fact("p(1)"), &[fact("a(1)")]));
        assert!(fs.survives_deletion(&fact("q(1)"), &[fact("a(1)")]));
        // Deleting both kills them.
        assert!(!fs.survives_deletion(&fact("p(1)"), &[fact("a(1)"), fact("c(1)")]));
        assert!(!fs.survives_deletion(&fact("q(1)"), &[fact("a(1)"), fact("c(1)")]));
        // An underivable fact never survives.
        assert!(!fs.survives_deletion(&fact("zz(1)"), &[]));
    }

    #[test]
    fn derivable_facts_match_definite_model() {
        let src = "e(1, 2). e(2, 3).
                   p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).";
        let p = Program::parse(src).unwrap();
        let fs = FactSupports::new(&p, 100_000).unwrap();
        let model = StandardModel::compute(&p).unwrap();
        let mut expected: Vec<Fact> = model.db().iter_facts().collect();
        expected.sort();
        assert_eq!(fs.derivable_facts(), expected);
        assert!(fs.bookkeeping_size() >= expected.len());
    }

    #[test]
    fn transitive_closure_supports_enumerate_paths() {
        // p(1,3) has exactly one support: both edges.
        let p = Program::parse(
            "e(1, 2). e(2, 3).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
        )
        .unwrap();
        let fs = FactSupports::new(&p, 100_000).unwrap();
        let sups = fs.supports_of(&fact("p(1, 3)"));
        assert_eq!(sups, vec![vec![fact("e(1, 2)"), fact("e(2, 3)")]]);
    }
}
