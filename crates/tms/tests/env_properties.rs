//! Property tests for the ATMS environment lattice and label invariants —
//! de Kleer's four label properties rest on these set operations being a
//! lattice and on minimality being maintained under arbitrary insertions.

use proptest::prelude::*;
use strata_tms::atms::{Atms, Env};

fn env_strategy() -> impl Strategy<Value = Env> {
    proptest::collection::vec(0u32..12, 0..6).prop_map(Env::from_ids)
}

proptest! {
    #[test]
    fn union_is_commutative_and_idempotent(a in env_strategy(), b in env_strategy()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn union_is_associative(
        a in env_strategy(),
        b in env_strategy(),
        c in env_strategy(),
    ) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn union_is_least_upper_bound(a in env_strategy(), b in env_strategy()) {
        let u = a.union(&b);
        prop_assert!(a.is_subset(&u));
        prop_assert!(b.is_subset(&u));
        // Nothing beyond the members of a and b is present.
        prop_assert_eq!(u.len() <= a.len() + b.len(), true);
        for id in u.ids() {
            prop_assert!(a.ids().contains(id) || b.ids().contains(id));
        }
    }

    #[test]
    fn subset_is_a_partial_order(
        a in env_strategy(),
        b in env_strategy(),
        c in env_strategy(),
    ) {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
        prop_assert!(Env::empty().is_subset(&a));
    }

    /// Labels stay antichains: after any sequence of justifications, no
    /// label environment subsumes another, and none is a nogood superset.
    #[test]
    fn labels_stay_minimal_and_consistent(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 1..20),
        nogood_pair in (0usize..8, 0usize..8),
    ) {
        let mut atms = Atms::new();
        let assumptions: Vec<_> = (0..8).map(|i| atms.create_assumption(format!("A{i}"))).collect();
        let nodes: Vec<_> = (0..8).map(|i| atms.create_node(format!("n{i}"))).collect();
        for (i, &(a, n)) in edges.iter().enumerate() {
            // Wire assumption a and (already-derived) node n into node (a+n)%8.
            atms.justify(nodes[(a + n) % 8], vec![assumptions[a], nodes[n]], format!("j{i}"));
            atms.justify(nodes[n], vec![assumptions[(a + 3) % 8]], format!("k{i}"));
        }
        let boom = atms.contradiction();
        atms.justify(
            boom,
            vec![assumptions[nogood_pair.0], assumptions[nogood_pair.1]],
            "nogood",
        );
        for node in assumptions.iter().chain(nodes.iter()) {
            let label = atms.label(*node);
            for (i, e1) in label.iter().enumerate() {
                prop_assert!(!atms.is_nogood(e1), "label env is nogood-subsumed");
                for (j, e2) in label.iter().enumerate() {
                    if i != j {
                        prop_assert!(!e1.is_subset(e2), "label not an antichain");
                    }
                }
            }
        }
    }
}
