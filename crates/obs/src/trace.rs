//! Pipeline traces and typed events.
//!
//! Every submit accepted by the ingest queue is assigned a process-unique
//! [`TraceId`]. When the worker drains a group it opens an *active span* on
//! its own thread ([`begin_group`]), lower layers stamp stages into it as
//! they happen ([`stage`] — the durable engine stamps [`Stage::Apply`], the
//! WAL stamps [`Stage::Fsync`]), and [`finish_group`] seals the span into a
//! fixed-size overwrite-oldest ring buffer. Stage stamps are
//! first-write-wins, so the deepest layer that observed a stage defines its
//! timestamp and outer layers only fill gaps (e.g. a memory engine has no
//! WAL, so the service's post-apply stamp stands in for both apply and
//! fsync). Sealed spans always satisfy
//! `enqueue ≤ cut ≤ coalesce ≤ apply ≤ fsync ≤ publish`.
//!
//! Supervisor actions (panic caught, heal attempts, read-only entry/exit,
//! WAL quarantine, recovery) are recorded as typed [`Event`]s in their own
//! ring and mirrored as `strata_events_total{kind="..."}` counters.
//!
//! All timestamps are microseconds since a process-local epoch (the first
//! use of the recorder), so spans from different threads are directly
//! comparable.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::global;

/// Completed group spans kept in the ring (overwrite-oldest).
pub const SPAN_RING: usize = 1024;
/// Typed events kept in the ring (overwrite-oldest).
pub const EVENT_RING: usize = 256;

/// A process-unique id assigned to each accepted submit.
pub type TraceId = u64;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the recorder's process-local epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Converts an [`Instant`] (e.g. a request's enqueue time) to microseconds
/// since the recorder epoch. Instants predating the epoch clamp to 0.
pub fn instant_us(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_micros() as u64
}

/// Allocates the next trace id (starting at 1).
pub fn next_trace_id() -> TraceId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Allocates a process-unique worker ordinal, so spans from concurrently
/// running services (e.g. several test servers in one process) can be told
/// apart even though each service numbers its groups from 1.
pub fn next_worker_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// What kind of group a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupKind {
    /// A coalesced batch of fact updates.
    Facts,
    /// A rule-update barrier.
    Rules,
}

impl GroupKind {
    /// Stable lowercase name, as rendered on the wire.
    pub fn as_str(&self) -> &'static str {
        match self {
            GroupKind::Facts => "facts",
            GroupKind::Rules => "rules",
        }
    }
}

/// Pipeline stages stamped into the active span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Coalescing plan computed.
    Coalesce,
    /// In-memory apply finished (stamped by the durable engine before the
    /// WAL commit, or by the service after `apply_all` for memory engines).
    Apply,
    /// WAL fsync completed.
    Fsync,
    /// New snapshot published.
    Publish,
}

/// A completed per-group span: stage timestamps in microseconds since the
/// recorder epoch, satisfying
/// `enqueue_us ≤ cut_us ≤ coalesce_us ≤ apply_us ≤ fsync_us ≤ publish_us`.
#[derive(Clone, Debug)]
pub struct GroupSpan {
    /// The worker ordinal (one per service instance).
    pub worker: u64,
    /// The group ordinal within its service.
    pub group: u64,
    /// Kind of group.
    pub kind: GroupKind,
    /// Snapshot version the group published, if it committed.
    pub version: Option<u64>,
    /// Whether the group committed (vs. rejected/rolled back).
    pub committed: bool,
    /// Requests in the group.
    pub size: usize,
    /// Trace ids of every request in the group.
    pub traces: Vec<TraceId>,
    /// Earliest enqueue among the group's requests.
    pub enqueue_us: u64,
    /// When the worker cut (drained) the group.
    pub cut_us: u64,
    /// Coalescing plan done.
    pub coalesce_us: u64,
    /// In-memory apply done.
    pub apply_us: u64,
    /// WAL fsync done (equals `apply_us` when nothing was synced).
    pub fsync_us: u64,
    /// Snapshot published (equals `fsync_us` for uncommitted groups).
    pub publish_us: u64,
}

impl GroupSpan {
    /// Queue wait: enqueue of the oldest request to group cut.
    pub fn wait_us(&self) -> u64 {
        self.cut_us.saturating_sub(self.enqueue_us)
    }

    /// Commit time: group cut to snapshot publish.
    pub fn commit_us(&self) -> u64 {
        self.publish_us.saturating_sub(self.cut_us)
    }

    /// One-line `key=value` rendering, used by the `trace` verb, the REPL,
    /// and the slow-group log.
    pub fn render(&self) -> String {
        let mut out = format!(
            "worker={} group={} kind={} committed={} size={}",
            self.worker,
            self.group,
            self.kind.as_str(),
            self.committed,
            self.size,
        );
        match self.version {
            Some(v) => {
                let _ = write!(out, " version={v}");
            }
            None => out.push_str(" version=none"),
        }
        let _ = write!(
            out,
            " enqueue_us={} cut_us={} coalesce_us={} apply_us={} fsync_us={} publish_us={} \
             wait_us={} commit_us={} traces={}",
            self.enqueue_us,
            self.cut_us,
            self.coalesce_us,
            self.apply_us,
            self.fsync_us,
            self.publish_us,
            self.wait_us(),
            self.commit_us(),
            self.traces.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(","),
        );
        out
    }
}

/// Typed supervisor / storage events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The worker caught a panic while processing a group.
    PanicCaught,
    /// The worker hit a storage failure while processing a group.
    StorageFault,
    /// The supervisor attempted a heal (rebuild + probe).
    HealAttempt,
    /// A heal succeeded and the worker restarted.
    Healed,
    /// The service entered read-only degradation.
    ReadOnlyEnter,
    /// The service left read-only degradation.
    ReadOnlyExit,
    /// The WAL quarantined a corrupt segment during recovery.
    WalQuarantine,
    /// A durable engine finished recovery.
    Recovery,
}

impl EventKind {
    /// Stable snake_case name, used as the `kind` label on
    /// `strata_events_total` and in event renderings.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::PanicCaught => "panic_caught",
            EventKind::StorageFault => "storage_fault",
            EventKind::HealAttempt => "heal_attempt",
            EventKind::Healed => "healed",
            EventKind::ReadOnlyEnter => "read_only_enter",
            EventKind::ReadOnlyExit => "read_only_exit",
            EventKind::WalQuarantine => "wal_quarantine",
            EventKind::Recovery => "recovery",
        }
    }
}

/// A recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Microseconds since the recorder epoch.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context (error text, attempt number, path, ...).
    pub detail: String,
}

impl Event {
    /// One-line rendering.
    pub fn render(&self) -> String {
        if self.detail.is_empty() {
            format!("at_us={} kind={}", self.at_us, self.kind.as_str())
        } else {
            format!("at_us={} kind={} detail={}", self.at_us, self.kind.as_str(), self.detail)
        }
    }
}

struct ActiveSpan {
    worker: u64,
    group: u64,
    kind: GroupKind,
    size: usize,
    traces: Vec<TraceId>,
    enqueue_us: u64,
    cut_us: u64,
    coalesce_us: Option<u64>,
    apply_us: Option<u64>,
    fsync_us: Option<u64>,
    publish_us: Option<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveSpan>> = const { RefCell::new(None) };
}

fn span_ring() -> &'static Mutex<VecDeque<GroupSpan>> {
    static RING: OnceLock<Mutex<VecDeque<GroupSpan>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(SPAN_RING)))
}

fn event_ring() -> &'static Mutex<VecDeque<Event>> {
    static RING: OnceLock<Mutex<VecDeque<Event>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(EVENT_RING)))
}

static SLOW_GROUP_US: AtomicU64 = AtomicU64::new(0);

/// Arms slow-group logging: any sealed span whose commit time
/// ([`GroupSpan::commit_us`]) reaches `us` microseconds is printed to
/// stderr with its full breakdown. `0` disables (the default).
pub fn set_slow_group_us(us: u64) {
    SLOW_GROUP_US.store(us, Ordering::Relaxed);
}

/// Opens the active span for a group on the current (worker) thread. Any
/// previous unfinished span on this thread (e.g. abandoned by a caught
/// panic) is discarded.
pub fn begin_group(
    worker: u64,
    group: u64,
    kind: GroupKind,
    traces: Vec<TraceId>,
    enqueue_us: u64,
) {
    let span = ActiveSpan {
        worker,
        group,
        kind,
        size: traces.len(),
        traces,
        enqueue_us,
        cut_us: now_us(),
        coalesce_us: None,
        apply_us: None,
        fsync_us: None,
        publish_us: None,
    };
    ACTIVE.with(|a| *a.borrow_mut() = Some(span));
}

/// Stamps `stage` on the current thread's active span with the current
/// time. First write wins: the deepest layer that observes a stage defines
/// it. No-op when no span is active (e.g. fsyncs outside group commit).
pub fn stage(stage: Stage) {
    let t = now_us();
    ACTIVE.with(|a| {
        if let Some(span) = a.borrow_mut().as_mut() {
            let slot = match stage {
                Stage::Coalesce => &mut span.coalesce_us,
                Stage::Apply => &mut span.apply_us,
                Stage::Fsync => &mut span.fsync_us,
                Stage::Publish => &mut span.publish_us,
            };
            if slot.is_none() {
                *slot = Some(t);
            }
        }
    });
}

/// Seals the current thread's active span, pushes it into the span ring,
/// and returns a copy (so the caller can feed latency histograms from the
/// same stamps). Missing stages inherit their predecessor's timestamp, and
/// stamps are monotonized, so sealed spans always satisfy
/// `enqueue ≤ cut ≤ coalesce ≤ apply ≤ fsync ≤ publish`. Returns `None`
/// (no-op) when no span is active.
pub fn finish_group(version: Option<u64>, committed: bool) -> Option<GroupSpan> {
    let active = ACTIVE.with(|a| a.borrow_mut().take())?;
    let cut = active.cut_us.max(active.enqueue_us);
    let coalesce = active.coalesce_us.unwrap_or(cut).max(cut);
    let apply = active.apply_us.unwrap_or(coalesce).max(coalesce);
    let fsync = active.fsync_us.unwrap_or(apply).max(apply);
    let publish = active.publish_us.unwrap_or(fsync).max(fsync);
    let span = GroupSpan {
        worker: active.worker,
        group: active.group,
        kind: active.kind,
        version,
        committed,
        size: active.size,
        traces: active.traces,
        enqueue_us: active.enqueue_us,
        cut_us: cut,
        coalesce_us: coalesce,
        apply_us: apply,
        fsync_us: fsync,
        publish_us: publish,
    };
    let slow = SLOW_GROUP_US.load(Ordering::Relaxed);
    if slow > 0 && span.commit_us() >= slow {
        eprintln!("[strata-obs] slow group: {}", span.render());
    }
    let mut ring = span_ring().lock().unwrap();
    if ring.len() == SPAN_RING {
        ring.pop_front();
    }
    ring.push_back(span.clone());
    drop(ring);
    Some(span)
}

/// The last `n` sealed spans, oldest first.
pub fn recent_spans(n: usize) -> Vec<GroupSpan> {
    let ring = span_ring().lock().unwrap();
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

/// Records a typed event into the event ring and bumps the
/// `strata_events_total{kind="..."}` counter in the global registry.
pub fn event(kind: EventKind, detail: impl Into<String>) {
    let ev = Event { at_us: now_us(), kind, detail: detail.into() };
    global().counter_with("strata_events_total", &[("kind", kind.as_str())]).inc();
    let mut ring = event_ring().lock().unwrap();
    if ring.len() == EVENT_RING {
        ring.pop_front();
    }
    ring.push_back(ev);
}

/// The last `n` events, oldest first.
pub fn recent_events(n: usize) -> Vec<Event> {
    let ring = event_ring().lock().unwrap();
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sealed spans fill missing stages and stay monotonic, whatever
    /// subset of stages was stamped.
    #[test]
    fn sealed_spans_are_monotonic() {
        let worker = next_worker_id();
        begin_group(worker, 1, GroupKind::Facts, vec![next_trace_id()], now_us());
        stage(Stage::Coalesce);
        stage(Stage::Apply);
        // No fsync (memory engine), straight to publish.
        stage(Stage::Publish);
        finish_group(Some(7), true);
        let span = recent_spans(usize::MAX)
            .into_iter()
            .rev()
            .find(|s| s.worker == worker)
            .expect("span sealed");
        assert_eq!(span.group, 1);
        assert_eq!(span.kind, GroupKind::Facts);
        assert_eq!(span.version, Some(7));
        assert!(span.committed);
        assert_eq!(span.size, 1);
        assert!(span.enqueue_us <= span.cut_us);
        assert!(span.cut_us <= span.coalesce_us);
        assert!(span.coalesce_us <= span.apply_us);
        assert!(span.apply_us <= span.fsync_us, "fsync backfilled from apply");
        assert!(span.fsync_us <= span.publish_us);
        let line = span.render();
        assert!(line.contains("kind=facts"));
        assert!(line.contains("version=7"));
    }

    /// First write wins: a deeper layer's stamp is not overwritten by an
    /// outer layer stamping the same stage later.
    #[test]
    fn stage_stamps_are_first_write_wins() {
        let worker = next_worker_id();
        begin_group(worker, 2, GroupKind::Facts, vec![], 0);
        stage(Stage::Apply);
        let deep = ACTIVE.with(|a| a.borrow().as_ref().unwrap().apply_us.unwrap());
        std::thread::sleep(std::time::Duration::from_millis(2));
        stage(Stage::Apply);
        let after = ACTIVE.with(|a| a.borrow().as_ref().unwrap().apply_us.unwrap());
        assert_eq!(deep, after);
        finish_group(None, false);
    }

    /// Stage stamps land on the worker's own span, not on other threads.
    #[test]
    fn stages_are_thread_local() {
        let worker = next_worker_id();
        begin_group(worker, 3, GroupKind::Rules, vec![], 0);
        std::thread::spawn(|| stage(Stage::Fsync)).join().unwrap();
        let fsync = ACTIVE.with(|a| a.borrow().as_ref().unwrap().fsync_us);
        assert_eq!(fsync, None, "other thread's stamp leaked in");
        finish_group(None, false);
    }

    #[test]
    fn events_are_ring_buffered_and_counted() {
        event(EventKind::HealAttempt, "attempt 1/3");
        let evs = recent_events(usize::MAX);
        let ev = evs.iter().rev().find(|e| e.kind == EventKind::HealAttempt).unwrap();
        assert!(ev.render().contains("kind=heal_attempt"));
        assert!(ev.render().contains("attempt 1/3"));
        let text = global().render();
        assert!(text.contains("strata_events_total{kind=\"heal_attempt\"}"));
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert!(b > a);
    }
}
