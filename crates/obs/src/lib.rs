//! # strata-obs
//!
//! Zero-dependency observability for the stratamaint workspace: a
//! process-wide [`metrics`] registry (counters, gauges, log-linear latency
//! histograms) and a [`trace`] recorder that follows each ingest group
//! through the pipeline (queue → coalesce → apply → WAL fsync → snapshot
//! publish) and logs typed supervisor events.
//!
//! ## Why no dependencies
//!
//! The build environment has no crates.io access, so the usual `metrics` /
//! `tracing` / `prometheus` crates are unavailable. Everything here is built
//! on `std` alone: atomics for the record path, one `Mutex` per registry map
//! or ring buffer for the (cold) registration and readout paths.
//!
//! ## Overhead bounds
//!
//! The record path is lock-free and allocation-free:
//!
//! * [`metrics::Counter::add`] / [`metrics::Gauge::set`] — one
//!   `Ordering::Relaxed` atomic RMW / store.
//! * [`metrics::Histogram::record`] — a bucket-index computation (a couple
//!   of shifts off the leading-zero count) plus **four** `Relaxed` atomic
//!   RMWs (bucket, count, sum, max). No locks, no allocation, ~10–20 ns on
//!   current hardware.
//!
//! Handle registration ([`metrics::Registry::counter`] and friends) takes
//! the registry mutex and allocates; callers are expected to register once
//! (e.g. in a `OnceLock`) and clone the returned `Arc` handles onto their
//! hot paths. Trace spans take one mutex acquisition per *group* (not per
//! update) when the completed span is pushed into the ring; per-stage
//! stamping is thread-local. Ring memory is bounded: the span ring keeps
//! the last [`trace::SPAN_RING`] group spans (overwrite-oldest), the event
//! ring the last [`trace::EVENT_RING`] events.
//!
//! ## Histograms
//!
//! Histograms use log-linear buckets: values below 8 get exact unit
//! buckets, then each power-of-two octave is split into 4 linear
//! sub-buckets (≤ 25 % relative width) up to 2³² − 1, with one overflow
//! bucket above. Quantile readout interpolates inside the bucket holding
//! the requested rank, so a reported quantile is always within one bucket
//! width of the exact order statistic; the maximum is tracked exactly.
//!
//! ## Exposition
//!
//! [`render`] produces Prometheus-style text exposition, sorted by metric
//! name so output is diff-stable: `# TYPE` lines, `name{label="v"} value`
//! samples, histograms as cumulative `_bucket{le="..."}` lines (empty
//! buckets elided, `+Inf` always present) plus `_sum` and `_count`.

pub mod metrics;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{Event, EventKind, GroupKind, GroupSpan, Stage, TraceId};

/// Renders the process-wide registry as Prometheus-style text exposition,
/// sorted by metric name.
pub fn render() -> String {
    global().render()
}
