//! The metrics registry: counters, gauges, and log-linear histograms.
//!
//! Handles are registered by name (plus an optional fixed label set) and
//! returned as `Arc`s; the same name always yields the same underlying
//! metric, so every layer of the process can cheaply share one registry.
//! Recording is lock-free (`Ordering::Relaxed` atomics); registration and
//! [`Registry::render`] take the registry mutex.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can be set to arbitrary levels.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge { value: AtomicU64::new(0) }
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: 8 exact unit buckets, 4 sub-buckets per
/// octave for exponents 3..=31, and one overflow bucket.
pub const BUCKETS: usize = 8 + 29 * 4 + 1;

/// Values below this get exact unit buckets.
const LINEAR_CUTOFF: u64 = 8;
/// log2 of the sub-buckets per octave (4).
const SUB_BITS: u32 = 2;
/// Largest exponent with its own octave; values ≥ 2^(MAX_EXP+1) overflow.
const MAX_EXP: u32 = 31;

/// Maps a value to its bucket index.
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    if e > MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((v >> (e - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    LINEAR_CUTOFF as usize + ((e - 3) as usize) * (1 << SUB_BITS) + sub
}

/// The half-open `[lo, hi)` range of values landing in bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i < LINEAR_CUTOFF as usize {
        return (i as u64, i as u64 + 1);
    }
    if i == BUCKETS - 1 {
        return (1 << (MAX_EXP + 1), u64::MAX);
    }
    let k = i - LINEAR_CUTOFF as usize;
    let e = 3 + (k / 4) as u32;
    let sub = (k % 4) as u64;
    let width = 1u64 << (e - SUB_BITS);
    let lo = (1u64 << e) + sub * width;
    (lo, lo + width)
}

/// A log-linear latency histogram with lock-free recording.
///
/// Values below 8 get exact unit buckets; each power-of-two octave above
/// is split into 4 linear sub-buckets (≤ 25 % relative width); values at
/// or above 2³² share one overflow bucket. `count`, `sum`, and an exact
/// `max` are tracked alongside the buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Four `Relaxed` atomic RMWs, no locks.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile readout.
#[derive(Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, interpolated inside the
    /// bucket holding the rank-`⌈q·count⌉` observation and clamped to the
    /// exact maximum. Returns 0 for an empty histogram; `quantile(1.0)`
    /// returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                if i == BUCKETS - 1 {
                    // Overflow bucket: no meaningful upper bound, report max.
                    return self.max;
                }
                let before = cum - n;
                let frac = (rank - before) as f64 / n as f64;
                let v = lo as f64 + (hi - lo) as f64 * frac;
                return (v as u64).min(hi - 1).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: `(p50, p90, p99, max)`.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.90), self.quantile(0.99), self.max)
    }
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Most callers want the process-wide
/// [`global`] registry so that every layer (WAL, engine, service) reports
/// into one exposition.
pub struct Registry {
    // Keyed by (name, rendered label pairs); BTreeMap keeps render output
    // sorted by metric name without a separate sort pass.
    slots: Mutex<BTreeMap<(String, String), Slot>>,
}

fn format_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    out
}

/// Splits an inline label suffix off a metric name: `name{db="x",shard="0"}`
/// becomes `("name", db="x",shard="0")`. Names without a well-formed suffix
/// pass through with no labels. The suffix is what multi-tenant layers use
/// to register one metric per `(db, shard)` without threading label slices
/// through every call site.
fn split_name(name: &str) -> (&str, &str) {
    if let Some((base, rest)) = name.split_once('{') {
        if let Some(inner) = rest.strip_suffix('}') {
            if !base.is_empty() && !inner.contains('{') {
                return (base, inner);
            }
        }
    }
    (name, "")
}

fn merge_labels(inline: &str, labels: &[(&str, &str)]) -> String {
    let rendered = format_labels(labels);
    match (inline.is_empty(), rendered.is_empty()) {
        (true, _) => rendered,
        (false, true) => inline.to_string(),
        (false, false) => format!("{inline},{rendered}"),
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { slots: Mutex::new(BTreeMap::new()) }
    }

    fn slot(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Slot) -> Slot {
        let (base, inline) = split_name(name);
        let key = (base.to_string(), merge_labels(inline, labels));
        let mut slots = self.slots.lock().unwrap();
        let slot = slots.entry(key).or_insert_with(make);
        match slot {
            Slot::Counter(c) => Slot::Counter(Arc::clone(c)),
            Slot::Gauge(g) => Slot::Gauge(Arc::clone(g)),
            Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
        }
    }

    /// Registers (or fetches) a counter. Panics if `name` was registered
    /// with a different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// A counter with a fixed label set.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.slot(name, labels, || Slot::Counter(Arc::new(Counter::new()))) {
            Slot::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// A gauge with a fixed label set.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.slot(name, labels, || Slot::Gauge(Arc::new(Gauge::new()))) {
            Slot::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Registers (or fetches) a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// A histogram with a fixed label set.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.slot(name, labels, || Slot::Histogram(Arc::new(Histogram::new()))) {
            Slot::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// The current value of a counter or gauge, if registered. `name` may
    /// carry an inline label suffix (`strata_queue_depth{db="orders"}`);
    /// without one, the unlabeled slot is read. Used by the REPL to
    /// cross-check the legacy stats line against the registry.
    pub fn value(&self, name: &str) -> Option<u64> {
        let (base, inline) = split_name(name);
        let slots = self.slots.lock().unwrap();
        match slots.get(&(base.to_string(), inline.to_string()))? {
            Slot::Counter(c) => Some(c.get()),
            Slot::Gauge(g) => Some(g.get()),
            Slot::Histogram(_) => None,
        }
    }

    /// Prometheus-style text exposition, sorted by metric name.
    ///
    /// Counters and gauges render as `name{labels} value`; histograms as
    /// cumulative `name_bucket{le="..."}` lines (empty buckets elided, the
    /// `+Inf` bucket always present) followed by `name_sum` and
    /// `name_count`. `le` bounds are inclusive integer upper bounds.
    pub fn render(&self) -> String {
        let slots = self.slots.lock().unwrap();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), slot) in slots.iter() {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} {}", slot.kind());
                last_name = Some(name.as_str());
            }
            let bare = labels.is_empty();
            match slot {
                Slot::Counter(c) => {
                    if bare {
                        let _ = writeln!(out, "{name} {}", c.get());
                    } else {
                        let _ = writeln!(out, "{name}{{{labels}}} {}", c.get());
                    }
                }
                Slot::Gauge(g) => {
                    if bare {
                        let _ = writeln!(out, "{name} {}", g.get());
                    } else {
                        let _ = writeln!(out, "{name}{{{labels}}} {}", g.get());
                    }
                }
                Slot::Histogram(h) => {
                    let snap = h.snapshot();
                    let prefix = if bare { String::new() } else { format!("{labels},") };
                    let mut cum = 0u64;
                    for (i, &n) in snap.buckets.iter().enumerate() {
                        if n == 0 || i == BUCKETS - 1 {
                            cum += n;
                            continue;
                        }
                        cum += n;
                        let (_, hi) = bucket_bounds(i);
                        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{}\"}} {cum}", hi - 1);
                    }
                    let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {}", snap.count);
                    if bare {
                        let _ = writeln!(out, "{name}_sum {}", snap.sum);
                        let _ = writeln!(out, "{name}_count {}", snap.count);
                    } else {
                        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", snap.sum);
                        let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count);
                    }
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// The process-wide registry every strata crate reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Every bucket's bounds are contiguous with its neighbour and contain
    /// exactly the values that map back to it.
    #[test]
    fn bucket_boundaries_are_contiguous_and_self_consistent() {
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} does not start where {} ended", i.max(1) - 1);
            assert!(hi > lo, "bucket {i} is empty");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i} maps elsewhere");
            assert_eq!(bucket_index(hi - 1), i, "upper bound of bucket {i} maps elsewhere");
            expected_lo = hi;
        }
        // The last bucket swallows everything up to u64::MAX.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    /// Small values get exact unit buckets; octaves split into quarters.
    #[test]
    fn bucket_layout_examples() {
        for v in 0..8u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v + 1));
        }
        assert_eq!(bucket_bounds(bucket_index(8)), (8, 10));
        assert_eq!(bucket_bounds(bucket_index(10)), (10, 12));
        assert_eq!(bucket_bounds(bucket_index(1024)), (1024, 1280));
        // Relative width stays within 25%.
        for i in 8..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!((hi - lo) * 4 <= lo, "bucket {i} wider than 25% of {lo}");
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.quantile(1.0), 0);
        assert_eq!(snap.summary(), (0, 0, 0, 0));
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(1234);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 1234);
        assert_eq!(snap.max, 1234);
        let (lo, hi) = bucket_bounds(bucket_index(1234));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = snap.quantile(q);
            assert!(got >= lo && got < hi, "q{q} = {got} outside [{lo},{hi})");
        }
        // max clamps the top quantile exactly.
        assert_eq!(snap.quantile(1.0), 1234);
    }

    #[test]
    fn all_samples_in_one_bucket_interpolate_within_it() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1025); // bucket [1024, 1280)
        }
        let snap = h.snapshot();
        for q in [0.01, 0.5, 0.9, 1.0] {
            let got = snap.quantile(q);
            assert!((1024..1280).contains(&got), "q{q} = {got}");
            assert!(got <= snap.max, "quantile above exact max");
        }
    }

    #[test]
    fn overflow_bucket_reports_the_exact_max() {
        let h = Histogram::new();
        h.record(5);
        h.record(u64::MAX - 3);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[BUCKETS - 1], 1);
        assert_eq!(snap.quantile(1.0), u64::MAX - 3);
        assert_eq!(snap.max, u64::MAX - 3);
        // The low sample still anchors the low quantiles.
        assert_eq!(snap.quantile(0.25), 5);
    }

    #[test]
    fn registry_handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.value("x_total"), Some(3));
        let g = r.gauge("depth");
        g.set(7);
        assert_eq!(r.value("depth"), Some(7));
    }

    #[test]
    fn inline_label_suffix_names_distinct_slots() {
        let r = Registry::new();
        r.gauge("strata_queue_depth{db=\"orders\",shard=\"0\"}").set(3);
        r.gauge("strata_queue_depth{db=\"orders\",shard=\"1\"}").set(5);
        r.gauge("strata_queue_depth").set(8);
        // The suffix routes to the same slot as the explicit label slice.
        assert_eq!(
            r.gauge_with("strata_queue_depth", &[("db", "orders"), ("shard", "0")]).get(),
            3
        );
        assert_eq!(r.value("strata_queue_depth{db=\"orders\",shard=\"1\"}"), Some(5));
        assert_eq!(r.value("strata_queue_depth"), Some(8));
        r.counter("strata_commits_total{db=\"a\"}").add(2);
        let h = r.histogram("lat_us{db=\"a\"}");
        h.record(4);
        let text = r.render();
        assert!(text.contains("strata_queue_depth{db=\"orders\",shard=\"0\"} 3"), "{text}");
        assert!(text.contains("strata_queue_depth{db=\"orders\",shard=\"1\"} 5"), "{text}");
        assert!(text.contains("strata_queue_depth 8"), "{text}");
        assert!(text.contains("strata_commits_total{db=\"a\"} 2"), "{text}");
        assert!(text.contains("lat_us_bucket{db=\"a\",le=\"4\"} 1"), "{text}");
        assert!(text.contains("lat_us_count{db=\"a\"} 1"), "{text}");
        // One TYPE header per base name even with many label sets.
        let depth_types =
            text.lines().filter(|l| l.starts_with("# TYPE strata_queue_depth ")).count();
        assert_eq!(depth_types, 1, "{text}");
        // A name without a well-formed suffix passes through untouched.
        r.counter("odd{name").inc();
        assert_eq!(r.value("odd{name"), Some(1));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("x_total");
        let _ = r.gauge("x_total");
    }

    /// Exposition is sorted by metric name, carries `# TYPE` headers, and
    /// renders histograms as cumulative buckets plus sum/count.
    #[test]
    fn render_is_sorted_and_prometheus_shaped() {
        let r = Registry::new();
        r.counter("zeta_total").add(4);
        r.gauge("alpha_depth").set(2);
        let h = r.histogram("mid_latency_us");
        h.record(3);
        h.record(9);
        r.counter_with("events_total", &[("kind", "heal")]).inc();
        let text = r.render();
        let names: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "exposition not sorted:\n{text}");
        assert!(text.contains("# TYPE alpha_depth gauge"));
        assert!(text.contains("alpha_depth 2"));
        assert!(text.contains("events_total{kind=\"heal\"} 1"));
        assert!(text.contains("# TYPE mid_latency_us histogram"));
        assert!(text.contains("mid_latency_us_bucket{le=\"3\"} 1"));
        assert!(text.contains("mid_latency_us_bucket{le=\"9\"} 2"));
        assert!(text.contains("mid_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mid_latency_us_sum 12"));
        assert!(text.contains("mid_latency_us_count 2"));
        // Rendering twice is byte-identical (diff-stable).
        assert_eq!(text, r.render());
    }

    proptest! {
        /// Recorded quantiles stay within one bucket width of the exact
        /// sorted-sample order statistic.
        #[test]
        fn quantiles_track_exact_order_statistics(
            values in proptest::collection::vec(0u64..2_000_000, 1..200),
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let snap = h.snapshot();
            for q in [0.0f64, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let got = snap.quantile(q);
                let (lo, hi) = bucket_bounds(bucket_index(exact));
                let width = hi - lo;
                let diff = got.abs_diff(exact);
                prop_assert!(
                    diff <= width,
                    "q{q}: got {got}, exact {exact}, bucket width {width}"
                );
            }
        }
    }
}
