//! Parser round-trip properties: `Display` output re-parses to an equal
//! structure, for randomly generated facts, rules, and programs.

use proptest::prelude::*;
use strata_datalog::{Atom, Fact, Literal, Program, Rule, Term, Value};

/// Arbitrary symbol content: whitespace, quotes, backslashes, escapes,
/// control characters, unicode, keywords — everything quote-on-write must
/// survive.
fn hostile_symbol_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
        "[A-Z][ a-zA-Z0-9_.:+-]{0,5}".prop_map(|s| s),
        "[ -~]{0,8}".prop_map(|s| s), // any printable ASCII, incl. \ " ( ) , . ! %
        prop_oneof![
            Just("not".to_string()),
            Just(String::new()),
            Just("a\"b\\c".to_string()),
            Just("line\nbreak\ttab\rret".to_string()),
            Just("héllo wörld 日本".to_string()),
            Just("ctrl\u{1}\u{7f}chars".to_string()),
            Just("// comment % comment".to_string()),
        ],
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::int),
        hostile_symbol_strategy().prop_map(|s| Value::sym(&s)),
    ]
}

fn fact_strategy() -> impl Strategy<Value = Fact> {
    ("[a-z][a-z0-9_]{0,6}", proptest::collection::vec(value_strategy(), 0..4))
        .prop_map(|(rel, args)| Fact::new(rel.as_str(), args))
}

/// Facts whose relation names are hostile too.
fn hostile_fact_strategy() -> impl Strategy<Value = Fact> {
    (hostile_symbol_strategy(), proptest::collection::vec(value_strategy(), 0..3))
        .prop_map(|(rel, args)| Fact::new(rel.as_str(), args))
}

/// A safe rule: head/negative variables drawn from the positive literal's.
fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        "[a-z][a-z0-9_]{0,5}",
        "[a-z][a-z0-9_]{0,5}",
        "[a-z][a-z0-9_]{0,5}",
        1usize..3,
        proptest::bool::ANY,
    )
        .prop_map(|(h, p, n, arity, negate)| {
            let vars: Vec<Term> = (0..arity).map(|i| Term::var(&format!("V{i}"))).collect();
            let mut body = vec![Literal::pos(Atom::new(p.as_str(), vars.clone()))];
            if negate {
                body.push(Literal::neg(Atom::new(n.as_str(), vars.clone())));
            }
            Rule::new(Atom::new(h.as_str(), vars), body).expect("constructed safe")
        })
}

proptest! {
    #[test]
    fn fact_display_reparses(f in fact_strategy()) {
        let round = Fact::parse(&f.to_string())
            .unwrap_or_else(|e| panic!("`{f}` failed to re-parse: {e}"));
        prop_assert_eq!(round, f);
    }

    #[test]
    fn hostile_fact_display_reparses(f in hostile_fact_strategy()) {
        let round = Fact::parse(&f.to_string())
            .unwrap_or_else(|e| panic!("`{f}` failed to re-parse: {e}"));
        prop_assert_eq!(round, f);
    }

    #[test]
    fn hostile_fact_lists_reparse(
        facts in proptest::collection::vec(hostile_fact_strategy(), 0..6),
    ) {
        // The `.`-separated list form the snapshot debug-dump and `:save`
        // export use: lexer-aware splitting must survive dots and quotes
        // inside symbols.
        let text: String =
            facts.iter().map(|f| format!("{f}. ")).collect();
        let round = strata_datalog::parser::parse_fact_list(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to re-parse: {e}"));
        prop_assert_eq!(round, facts);
    }

    #[test]
    fn rule_display_reparses(r in rule_strategy()) {
        let round = Rule::parse(&r.to_string())
            .unwrap_or_else(|e| panic!("`{r}` failed to re-parse: {e}"));
        prop_assert_eq!(round.to_string(), r.to_string());
    }

    #[test]
    fn program_display_reparses(
        facts in proptest::collection::vec(fact_strategy(), 0..10),
        rules in proptest::collection::vec(rule_strategy(), 0..5),
    ) {
        let mut program = Program::new();
        for f in facts {
            // Arity clashes between random facts are possible: skip those.
            let _ = program.assert_fact(f);
        }
        for r in rules {
            let _ = program.add_rule(r);
        }
        let text = program.to_string();
        let round = Program::parse(&text)
            .unwrap_or_else(|e| panic!("program failed to re-parse: {e}\n{text}"));
        prop_assert_eq!(round.num_facts(), program.num_facts());
        prop_assert_eq!(round.num_rules(), program.num_rules());
        prop_assert_eq!(round.to_string(), text);
    }
}
