//! Parser round-trip properties: `Display` output re-parses to an equal
//! structure, for randomly generated facts, rules, and programs.

use proptest::prelude::*;
use strata_datalog::{Atom, Fact, Literal, Program, Rule, Term, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::int),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Value::sym(&s)),
        // Strings needing quotes (printable, no quote/backslash so the
        // Display escaping stays the identity).
        "[A-Z][ a-zA-Z0-9_.:+-]{0,5}".prop_map(|s| Value::sym(&s)),
    ]
}

fn fact_strategy() -> impl Strategy<Value = Fact> {
    ("[a-z][a-z0-9_]{0,6}", proptest::collection::vec(value_strategy(), 0..4))
        .prop_map(|(rel, args)| Fact::new(rel.as_str(), args))
}

/// A safe rule: head/negative variables drawn from the positive literal's.
fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        "[a-z][a-z0-9_]{0,5}",
        "[a-z][a-z0-9_]{0,5}",
        "[a-z][a-z0-9_]{0,5}",
        1usize..3,
        proptest::bool::ANY,
    )
        .prop_map(|(h, p, n, arity, negate)| {
            let vars: Vec<Term> = (0..arity).map(|i| Term::var(&format!("V{i}"))).collect();
            let mut body = vec![Literal::pos(Atom::new(p.as_str(), vars.clone()))];
            if negate {
                body.push(Literal::neg(Atom::new(n.as_str(), vars.clone())));
            }
            Rule::new(Atom::new(h.as_str(), vars), body).expect("constructed safe")
        })
}

proptest! {
    #[test]
    fn fact_display_reparses(f in fact_strategy()) {
        let round = Fact::parse(&f.to_string())
            .unwrap_or_else(|e| panic!("`{f}` failed to re-parse: {e}"));
        prop_assert_eq!(round, f);
    }

    #[test]
    fn rule_display_reparses(r in rule_strategy()) {
        let round = Rule::parse(&r.to_string())
            .unwrap_or_else(|e| panic!("`{r}` failed to re-parse: {e}"));
        prop_assert_eq!(round.to_string(), r.to_string());
    }

    #[test]
    fn program_display_reparses(
        facts in proptest::collection::vec(fact_strategy(), 0..10),
        rules in proptest::collection::vec(rule_strategy(), 0..5),
    ) {
        let mut program = Program::new();
        for f in facts {
            // Arity clashes between random facts are possible: skip those.
            let _ = program.assert_fact(f);
        }
        for r in rules {
            let _ = program.add_rule(r);
        }
        let text = program.to_string();
        let round = Program::parse(&text)
            .unwrap_or_else(|e| panic!("program failed to re-parse: {e}\n{text}"));
        prop_assert_eq!(round.num_facts(), program.num_facts());
        prop_assert_eq!(round.num_rules(), program.num_rules());
        prop_assert_eq!(round.to_string(), text);
    }
}
