//! In-memory tuple storage with per-column secondary indexes.
//!
//! [`Relation`] stores the extension of one relation: a row arena with
//! tombstoned deletes, a hash map for membership, and one hash index per
//! column for bound-column scans during joins. [`Database`] maps relation
//! symbols to relations and represents a Herbrand interpretation (a set of
//! facts) — in particular the model `M(P)` that the maintenance layer keeps
//! up to date.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rustc_hash::{FxHashMap, FxHashSet};

use crate::atom::Fact;
use crate::symbol::Symbol;
use crate::term::Value;

/// A stored tuple.
pub type TupleData = Box<[Value]>;

/// The storage abstraction the persistence layer programs against: a
/// mutable set of ground facts.
///
/// [`Database`] is the default, in-memory implementation (row arenas with
/// per-column indexes). A durable backend materializes recovered state into
/// any `TupleStore`, and the snapshot writer drains one through
/// [`TupleStore::for_each_fact`] — neither needs to know how tuples are
/// laid out. Method names carry a `_fact` suffix so the trait can coexist
/// with `Database`'s richer inherent API.
pub trait TupleStore {
    /// Inserts a fact; returns `true` if it was new.
    fn insert_fact(&mut self, fact: Fact) -> bool;

    /// Removes a fact; returns `true` if it was present.
    fn remove_fact(&mut self, fact: &Fact) -> bool;

    /// Membership test.
    fn contains_fact(&self, fact: &Fact) -> bool;

    /// Number of stored facts.
    fn fact_count(&self) -> usize;

    /// Whether the store holds no facts.
    fn is_empty_store(&self) -> bool {
        self.fact_count() == 0
    }

    /// Calls `f` for every stored fact (order unspecified).
    fn for_each_fact(&self, f: &mut dyn FnMut(&Fact));
}

impl TupleStore for Database {
    fn insert_fact(&mut self, fact: Fact) -> bool {
        self.insert(fact)
    }

    fn remove_fact(&mut self, fact: &Fact) -> bool {
        self.remove(fact)
    }

    fn contains_fact(&self, fact: &Fact) -> bool {
        self.contains(fact)
    }

    fn fact_count(&self) -> usize {
        self.len()
    }

    fn for_each_fact(&self, f: &mut dyn FnMut(&Fact)) {
        for fact in self.iter_facts() {
            f(&fact);
        }
    }
}

/// Read-only relation lookup — the facet of fact storage that rule-body
/// matching and queries need. Implemented by [`Database`] (the live,
/// mutable store) and [`ModelSnapshot`] (an immutable published copy), so
/// a compiled plan runs identically against either: the MVCC read path
/// evaluates queries on a snapshot with no access to the engine at all.
pub trait RelSource {
    /// The extension of `rel`, if any fact of it was ever inserted.
    fn relation(&self, rel: Symbol) -> Option<&Relation>;
}

impl RelSource for Database {
    fn relation(&self, rel: Symbol) -> Option<&Relation> {
        Database::relation(self, rel)
    }
}

impl RelSource for ModelSnapshot {
    fn relation(&self, rel: Symbol) -> Option<&Relation> {
        ModelSnapshot::relation(self, rel)
    }
}

/// Process-unique relation identities for [`RelStamp`].
static NEXT_REL_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_rel_id() -> u64 {
    NEXT_REL_ID.fetch_add(1, Ordering::Relaxed)
}

/// A cheap content-identity stamp for a [`Relation`]: a process-unique
/// object id plus a mutation counter. Two equal stamps observed at
/// different times are a guarantee of identical content — the id pins the
/// observations to one relation object (clones get fresh ids), and the
/// counter advances on every successful insert or remove. This is what
/// makes copy-on-publish snapshots O(changed relations): an unchanged
/// relation's `Arc` is reused instead of re-cloned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelStamp {
    id: u64,
    muts: u64,
}

/// Compaction triggers when tombstones exceed this fraction of the arena
/// (denominator: `tombstones > rows / COMPACT_DIVISOR`). At 2, the arena —
/// and with it the stale ids lingering in the per-column posting lists —
/// never exceeds twice the live tuple count.
const COMPACT_DIVISOR: usize = 2;

/// Arenas at or below this size skip compaction: rebuilding is not worth it
/// and the waste is bounded by a constant.
const COMPACT_MIN_ROWS: usize = 64;

/// The extension of a single relation.
pub struct Relation {
    arity: usize,
    /// Row arena; `None` marks a tombstone left by a deletion.
    rows: Vec<Option<TupleData>>,
    /// Membership and row lookup.
    by_tuple: FxHashMap<TupleData, u32>,
    /// `cols[c][v]` = row ids whose column `c` holds `v` (may contain stale
    /// ids pointing at tombstones; readers re-validate).
    cols: Vec<FxHashMap<Value, Vec<u32>>>,
    tombstones: usize,
    /// Process-unique object identity (fresh per construction and clone).
    id: u64,
    /// Successful mutations applied to *this* object.
    muts: u64,
}

impl Default for Relation {
    fn default() -> Relation {
        Relation::new(0)
    }
}

impl Clone for Relation {
    /// A clone carries the same content under a **fresh identity**: stamp
    /// comparisons never conflate two objects that may diverge.
    fn clone(&self) -> Relation {
        Relation {
            arity: self.arity,
            rows: self.rows.clone(),
            by_tuple: self.by_tuple.clone(),
            cols: self.cols.clone(),
            tombstones: self.tombstones,
            id: fresh_rel_id(),
            muts: 0,
        }
    }
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            by_tuple: FxHashMap::default(),
            cols: vec![FxHashMap::default(); arity],
            tombstones: 0,
            id: fresh_rel_id(),
            muts: 0,
        }
    }

    /// The content-identity stamp (see [`RelStamp`]).
    pub fn stamp(&self) -> RelStamp {
        RelStamp { id: self.id, muts: self.muts }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.by_tuple.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.by_tuple.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.by_tuple.contains_key(tuple)
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// If the tuple arity does not match the relation arity.
    pub fn insert(&mut self, tuple: TupleData) -> bool {
        assert_eq!(tuple.len(), self.arity, "arity mismatch on insert");
        if self.by_tuple.contains_key(&tuple) {
            return false;
        }
        let id = u32::try_from(self.rows.len()).expect("relation row overflow");
        for (c, v) in tuple.iter().enumerate() {
            self.cols[c].entry(*v).or_default().push(id);
        }
        self.by_tuple.insert(tuple.clone(), id);
        self.rows.push(Some(tuple));
        self.muts += 1;
        true
    }

    /// Removes a tuple; returns `true` if it was present.
    ///
    /// Deletion tombstones the arena row and leaves the row id stale in
    /// every per-column posting list; when tombstones pass the
    /// [`COMPACT_DIVISOR`] threshold the relation is compacted — rows *and*
    /// indexes rebuilt — so neither accumulates beyond a constant factor of
    /// the live size under sustained insert/delete churn.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        let Some(id) = self.by_tuple.remove(tuple) else {
            return false;
        };
        self.rows[id as usize] = None;
        self.tombstones += 1;
        self.muts += 1;
        if self.tombstones > self.rows.len() / COMPACT_DIVISOR && self.rows.len() > COMPACT_MIN_ROWS
        {
            self.compact();
        }
        true
    }

    /// Arena length including tombstones (compaction bound checks).
    pub fn arena_len(&self) -> usize {
        self.rows.len()
    }

    /// Number of tombstoned arena rows.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Total entries across the per-column posting lists, stale ids
    /// included (compaction bound checks).
    pub fn index_entries(&self) -> usize {
        self.cols.iter().flat_map(|c| c.values()).map(Vec::len).sum()
    }

    /// Rebuilds the arena and indexes, dropping tombstones.
    fn compact(&mut self) {
        let live: Vec<TupleData> = self.rows.drain(..).flatten().collect();
        self.by_tuple.clear();
        for col in &mut self.cols {
            col.clear();
        }
        self.tombstones = 0;
        for t in live {
            let id = self.rows.len() as u32;
            for (c, v) in t.iter().enumerate() {
                self.cols[c].entry(*v).or_default().push(id);
            }
            self.by_tuple.insert(t.clone(), id);
            self.rows.push(Some(t));
        }
    }

    /// Iterates over live tuples.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.rows.iter().filter_map(|r| r.as_deref())
    }

    /// Scans tuples whose column `col` equals `v`, using the column index.
    pub fn scan_bound(&self, col: usize, v: Value) -> impl Iterator<Item = &[Value]> + '_ {
        self.cols[col]
            .get(&v)
            .into_iter()
            .flatten()
            .filter_map(move |&id| self.rows[id as usize].as_deref())
            // Stale ids may survive a compact-free delete+reinsert cycle at a
            // reused arena slot, so re-check the column value.
            .filter(move |t| t[col] == v)
    }

    /// Estimated number of matches for a bound column (for join ordering).
    pub fn estimate_bound(&self, col: usize, v: Value) -> usize {
        self.cols[col].get(&v).map_or(0, Vec::len)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity {}, {} tuples)", self.arity, self.len())
    }
}

/// A set of facts grouped by relation — a Herbrand interpretation.
#[derive(Clone, Default)]
pub struct Database {
    rels: FxHashMap<Symbol, Relation>,
    len: usize,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Builds a database from facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Database {
        let mut db = Database::new();
        for f in facts {
            db.insert(f);
        }
        db
    }

    /// Inserts a fact; returns `true` if new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        let arity = fact.arity();
        let rel = self.rels.entry(fact.rel).or_insert_with(|| Relation::new(arity));
        let added = rel.insert(fact.args);
        if added {
            self.len += 1;
        }
        added
    }

    /// Removes a fact; returns `true` if present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(rel) = self.rels.get_mut(&fact.rel) else {
            return false;
        };
        let removed = rel.remove(&fact.args);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.rels.get(&fact.rel).is_some_and(|r| r.contains(&fact.args))
    }

    /// Membership test from source text (testing convenience).
    ///
    /// # Panics
    /// If `src` does not parse as a ground fact.
    pub fn contains_parsed(&self, src: &str) -> bool {
        self.contains(&Fact::parse(src).expect("invalid fact literal"))
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The extension of `rel`, if any fact of it was ever inserted.
    pub fn relation(&self, rel: Symbol) -> Option<&Relation> {
        self.rels.get(&rel)
    }

    /// Iterates over every relation ever touched, with its [`Relation`]
    /// (order unspecified; empty relations whose last tuple was removed
    /// are included). The change-detection entry point of incremental
    /// snapshots: callers diff the per-relation [`RelStamp`]s against a
    /// recorded baseline to find what moved.
    pub fn relations(&self) -> impl Iterator<Item = (Symbol, &Relation)> + '_ {
        self.rels.iter().map(|(&sym, rel)| (sym, rel))
    }

    /// Number of live tuples of `rel`.
    pub fn count(&self, rel: Symbol) -> usize {
        self.rels.get(&rel).map_or(0, Relation::len)
    }

    /// Iterates over all facts (relation order unspecified).
    pub fn iter_facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels.iter().flat_map(|(&rel, r)| r.iter().map(move |t| Fact { rel, args: t.into() }))
    }

    /// Iterates over the facts of one relation.
    pub fn facts_of(&self, rel: Symbol) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .get(&rel)
            .into_iter()
            .flat_map(move |r| r.iter().map(move |t| Fact { rel, args: t.into() }))
    }

    /// The facts of `self` missing from `other`, sorted (for stable output).
    pub fn difference(&self, other: &Database) -> Vec<Fact> {
        let mut out: Vec<Fact> = self.iter_facts().filter(|f| !other.contains(f)).collect();
        out.sort();
        out
    }

    /// All facts, sorted — handy for assertions and display.
    pub fn sorted_facts(&self) -> Vec<Fact> {
        let mut v: Vec<Fact> = self.iter_facts().collect();
        v.sort();
        v
    }

    /// Freezes the current contents into an immutable, `Arc`-shared
    /// [`ModelSnapshot`] — the publish step of the MVCC read path.
    ///
    /// Copy-on-publish: a relation whose [`RelStamp`] matches the one
    /// recorded in `prev` is **shared** (its `Arc` is cloned, not its
    /// tuples), so the cost of a publish is O(relations) stamp checks plus
    /// a deep copy of only the relations the last commit actually touched.
    pub fn snapshot(&self, prev: Option<&ModelSnapshot>) -> ModelSnapshot {
        let rels = self
            .rels
            .iter()
            .map(|(&sym, rel)| {
                let stamp = rel.stamp();
                let reused = prev
                    .and_then(|p| p.rels.get(&sym))
                    .filter(|(s, _)| *s == stamp)
                    .map(|(_, arc)| Arc::clone(arc));
                (sym, (stamp, reused.unwrap_or_else(|| Arc::new(rel.clone()))))
            })
            .collect();
        ModelSnapshot { rels, len: self.len }
    }
}

/// An immutable point-in-time copy of a [`Database`], sharing unchanged
/// [`Relation`]s with its predecessor snapshot by `Arc`.
///
/// Snapshots are the read side of MVCC: queries evaluate against one with
/// no lock and no engine access, while the writer keeps mutating the live
/// database it was frozen from. Build with [`Database::snapshot`].
#[derive(Clone, Default)]
pub struct ModelSnapshot {
    rels: FxHashMap<Symbol, (RelStamp, Arc<Relation>)>,
    len: usize,
}

impl ModelSnapshot {
    /// The extension of `rel`, if the snapshot holds one.
    pub fn relation(&self, rel: Symbol) -> Option<&Relation> {
        self.rels.get(&rel).map(|(_, r)| &**r)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the snapshot holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relation(fact.rel).is_some_and(|r| r.contains(&fact.args))
    }

    /// Membership test from source text (testing convenience).
    ///
    /// # Panics
    /// If `src` does not parse as a ground fact.
    pub fn contains_parsed(&self, src: &str) -> bool {
        self.contains(&Fact::parse(src).expect("invalid fact literal"))
    }

    /// Number of live tuples of `rel`.
    pub fn count(&self, rel: Symbol) -> usize {
        self.relation(rel).map_or(0, Relation::len)
    }

    /// Iterates over all facts (relation order unspecified).
    pub fn iter_facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .iter()
            .flat_map(|(&rel, (_, r))| r.iter().map(move |t| Fact { rel, args: t.into() }))
    }

    /// All facts, sorted — handy for assertions and display.
    pub fn sorted_facts(&self) -> Vec<Fact> {
        let mut v: Vec<Fact> = self.iter_facts().collect();
        v.sort();
        v
    }

    /// How many of the snapshot's relations share their `Arc` with `prev`
    /// (testing / observability: the copy-on-publish effectiveness).
    pub fn shared_with(&self, prev: &ModelSnapshot) -> usize {
        self.rels
            .iter()
            .filter(|(sym, (_, r))| prev.rels.get(*sym).is_some_and(|(_, p)| Arc::ptr_eq(p, r)))
            .count()
    }
}

impl fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModelSnapshot({} facts, {} relations)", self.len, self.rels.len())
    }
}

impl PartialEq for Database {
    /// Set equality on facts.
    fn eq(&self, other: &Database) -> bool {
        self.len == other.len && self.iter_facts().all(|f| other.contains(&f))
    }
}

impl Eq for Database {}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let facts = self.sorted_facts();
        write!(f, "{{")?;
        for (i, fact) in facts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Fact> for Database {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Database {
        Database::from_facts(iter)
    }
}

/// Parses a `.`-separated list of ground facts (testing helper).
///
/// Goes through the real lexer (not naive `.`-splitting), so quoted symbols
/// containing dots or other parser-significant characters are safe — the
/// property the snapshot debug-dump and `:save` text export rely on.
///
/// ```
/// use strata_datalog::storage::parse_facts;
/// let facts = parse_facts("p(a). q(1, 2). r(\"dotted.name\").");
/// assert_eq!(facts.len(), 3);
/// ```
pub fn parse_facts(src: &str) -> FxHashSet<Fact> {
    crate::parser::parse_fact_list(src)
        .unwrap_or_else(|e| panic!("invalid fact in list: {e}"))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> TupleData {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.contains(&t(&[1, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.remove(&t(&[1, 2])));
        assert!(!r.remove(&t(&[1, 2])));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_insert() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn scan_bound_uses_index() {
        let mut r = Relation::new(2);
        for i in 0..100 {
            r.insert(t(&[i % 10, i]));
        }
        let hits: Vec<_> = r.scan_bound(0, Value::int(3)).collect();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|t| t[0] == Value::int(3)));
        assert_eq!(r.estimate_bound(0, Value::int(3)), 10);
        assert_eq!(r.scan_bound(0, Value::int(99)).count(), 0);
    }

    #[test]
    fn scan_bound_skips_tombstones() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 11]));
        r.remove(&t(&[1, 10]));
        let hits: Vec<_> = r.scan_bound(0, Value::int(1)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][1], Value::int(11));
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut r = Relation::new(1);
        for i in 0..200 {
            r.insert(t(&[i]));
        }
        for i in 0..150 {
            r.remove(&t(&[i]));
        }
        // Compaction has certainly triggered by now.
        assert_eq!(r.len(), 50);
        for i in 150..200 {
            assert!(r.contains(&t(&[i])));
            assert_eq!(r.scan_bound(0, Value::int(i)).count(), 1);
        }
        assert_eq!(r.iter().count(), 50);
    }

    #[test]
    fn churn_keeps_iteration_correct_and_arena_bounded() {
        // Sustained insert/delete churn (including delete+reinsert of the
        // same tuples, which strands stale ids in the posting lists): live
        // iteration must stay exact and compaction must bound both the
        // arena and the index entries by a constant factor of live size.
        let mut r = Relation::new(2);
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut live: std::collections::BTreeSet<(i64, i64)> = Default::default();
        for round in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = ((x >> 33) % 50) as i64;
            let b = ((x >> 13) % 50) as i64;
            if round % 3 == 0 {
                if r.remove(&t(&[a, b])) {
                    live.remove(&(a, b));
                }
            } else if r.insert(t(&[a, b])) {
                live.insert((a, b));
            }
            assert_eq!(r.len(), live.len(), "round {round}");
        }
        // Exact live contents, via full iteration and via indexed scans.
        let mut seen: Vec<(i64, i64)> = r
            .iter()
            .map(|t| match (t[0], t[1]) {
                (Value::Int(a), Value::Int(b)) => (a, b),
                _ => unreachable!(),
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, live.iter().copied().collect::<Vec<_>>());
        for a in 0..50 {
            let expect = live.iter().filter(|&&(x0, _)| x0 == a).count();
            assert_eq!(r.scan_bound(0, Value::int(a)).count(), expect, "column 0 = {a}");
        }
        // Compaction bounds: arena ≤ 2× live (or the small-relation floor),
        // and posting lists hold one entry per arena row per column.
        let bound = (r.len() * 2).max(COMPACT_MIN_ROWS + 1);
        assert!(r.arena_len() <= bound, "arena {} vs live {}", r.arena_len(), r.len());
        assert!(r.index_entries() <= 2 * bound, "index entries {}", r.index_entries());
        assert!(r.tombstone_count() <= r.arena_len());
    }

    #[test]
    fn reinsert_after_remove() {
        let mut r = Relation::new(1);
        r.insert(t(&[7]));
        r.remove(&t(&[7]));
        assert!(r.insert(t(&[7])));
        assert!(r.contains(&t(&[7])));
        assert_eq!(r.scan_bound(0, Value::int(7)).count(), 1);
    }

    #[test]
    fn database_basics() {
        let mut db = Database::new();
        let f = Fact::new("e", vec![Value::int(1), Value::int(2)]);
        assert!(db.insert(f.clone()));
        assert!(!db.insert(f.clone()));
        assert!(db.contains(&f));
        assert_eq!(db.len(), 1);
        assert!(db.remove(&f));
        assert!(!db.remove(&f));
        assert!(db.is_empty());
    }

    #[test]
    fn database_equality_is_set_equality() {
        let a = Database::from_facts(parse_facts("p(1). q(2)."));
        let b = Database::from_facts(parse_facts("q(2). p(1)."));
        let c = Database::from_facts(parse_facts("p(1)."));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn difference_is_sorted_and_correct() {
        let a = Database::from_facts(parse_facts("p(1). p(2). q(1)."));
        let b = Database::from_facts(parse_facts("p(2)."));
        let d = a.difference(&b);
        assert_eq!(d.len(), 2);
        assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn facts_of_filters_by_relation() {
        let db = Database::from_facts(parse_facts("p(1). p(2). q(3)."));
        assert_eq!(db.facts_of(Symbol::new("p")).count(), 2);
        assert_eq!(db.facts_of(Symbol::new("q")).count(), 1);
        assert_eq!(db.facts_of(Symbol::new("zzz")).count(), 0);
        assert_eq!(db.count(Symbol::new("p")), 2);
    }

    #[test]
    fn zero_arity_facts() {
        let mut db = Database::new();
        assert!(db.insert(Fact::prop("alarm")));
        assert!(db.contains(&Fact::prop("alarm")));
        assert!(db.contains_parsed("alarm"));
        assert!(db.remove(&Fact::prop("alarm")));
    }

    #[test]
    fn debug_rendering_is_sorted() {
        let db = Database::from_facts(parse_facts("b(2). a(1)."));
        assert_eq!(format!("{db:?}"), "{a(1), b(2)}");
    }

    #[test]
    fn parse_facts_handles_quoted_separators() {
        let facts = parse_facts("p(\"a.b\"). q(\"x. y. z\").");
        assert_eq!(facts.len(), 2);
        assert!(facts.contains(&Fact::new("p", vec![Value::sym("a.b")])));
    }

    #[test]
    fn stamps_change_on_mutation_only() {
        let mut db = Database::from_facts(parse_facts("e(1). f(1)."));
        let before = db.relation(Symbol::new("e")).unwrap().stamp();
        // A no-op insert (duplicate) must not move the stamp.
        assert!(!db.insert(Fact::parse("e(1)").unwrap()));
        assert_eq!(db.relation(Symbol::new("e")).unwrap().stamp(), before);
        // A rejected remove must not move the stamp.
        assert!(!db.remove(&Fact::parse("e(9)").unwrap()));
        assert_eq!(db.relation(Symbol::new("e")).unwrap().stamp(), before);
        // A real insert must.
        assert!(db.insert(Fact::parse("e(2)").unwrap()));
        assert_ne!(db.relation(Symbol::new("e")).unwrap().stamp(), before);
        // A real remove must, again.
        let mid = db.relation(Symbol::new("e")).unwrap().stamp();
        assert!(db.remove(&Fact::parse("e(2)").unwrap()));
        assert_ne!(db.relation(Symbol::new("e")).unwrap().stamp(), mid);
    }

    #[test]
    fn cloned_relations_never_share_stamps() {
        // A clone has identical content but a fresh identity: two databases
        // rebuilt from the same facts (or cloned) must never alias stamps,
        // or snapshot reuse could serve stale tuples.
        let db = Database::from_facts(parse_facts("e(1)."));
        let copy = db.clone();
        assert_ne!(
            db.relation(Symbol::new("e")).unwrap().stamp(),
            copy.relation(Symbol::new("e")).unwrap().stamp(),
        );
    }

    #[test]
    fn snapshot_is_a_faithful_frozen_copy() {
        let mut db = Database::from_facts(parse_facts("e(1, 2). e(2, 3). s(1)."));
        let snap = db.snapshot(None);
        assert_eq!(snap.len(), 3);
        assert!(snap.contains_parsed("e(1, 2)"));
        assert_eq!(snap.count(Symbol::new("e")), 2);
        assert_eq!(snap.sorted_facts(), db.sorted_facts());
        // Mutating the live database does not disturb the snapshot.
        db.insert(Fact::parse("e(3, 4)").unwrap());
        db.remove(&Fact::parse("s(1)").unwrap());
        assert_eq!(snap.len(), 3);
        assert!(snap.contains_parsed("s(1)"));
        assert!(!snap.contains_parsed("e(3, 4)"));
    }

    #[test]
    fn snapshot_reuses_unchanged_relations() {
        let mut db = Database::from_facts(parse_facts("e(1). f(1). g(1)."));
        let first = db.snapshot(None);
        // Touch only `e`: the republish must share `f` and `g` with the
        // previous snapshot and deep-copy `e` alone.
        db.insert(Fact::parse("e(2)").unwrap());
        let second = db.snapshot(Some(&first));
        assert_eq!(second.shared_with(&first), 2);
        assert!(second.contains_parsed("e(2)"));
        assert!(!first.contains_parsed("e(2)"));
        // An untouched republish shares everything.
        let third = db.snapshot(Some(&second));
        assert_eq!(third.shared_with(&second), 3);
    }

    #[test]
    fn snapshot_answers_queries_like_the_database() {
        let db = Database::from_facts(parse_facts("e(1, 2). e(2, 3). a(3)."));
        let snap = db.snapshot(None);
        let q = crate::query::Query::parse("e(X, Y), !a(Y)").unwrap();
        assert_eq!(q.eval(&snap), q.eval(&db));
        assert!(q.holds(&snap));
        assert_eq!(q.count(&snap), 1);
    }

    #[test]
    fn tuple_store_default_impl_is_the_database() {
        fn exercise(store: &mut dyn TupleStore) {
            let f = Fact::parse("e(1, 2)").unwrap();
            assert!(store.is_empty_store());
            assert!(store.insert_fact(f.clone()));
            assert!(!store.insert_fact(f.clone()));
            assert!(store.contains_fact(&f));
            assert_eq!(store.fact_count(), 1);
            let mut seen = Vec::new();
            store.for_each_fact(&mut |f| seen.push(f.clone()));
            assert_eq!(seen, vec![f.clone()]);
            assert!(store.remove_fact(&f));
            assert!(!store.remove_fact(&f));
            assert!(store.is_empty_store());
        }
        exercise(&mut Database::new());
    }
}
