//! Atoms (possibly non-ground) and facts (ground atoms).

use std::fmt;

use crate::symbol::Symbol;
use crate::term::{Term, Value};

/// An atom `rel(t1, …, tn)` whose terms may contain variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation symbol.
    pub rel: Symbol,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a relation name and terms.
    pub fn new(rel: impl Into<Symbol>, terms: Vec<Term>) -> Atom {
        Atom { rel: rel.into(), terms }
    }

    /// The number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Whether all terms are constants.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Iterates over the variables occurring in this atom.
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// Converts a ground atom to a [`Fact`]; `None` if any term is a variable.
    pub fn to_fact(&self) -> Option<Fact> {
        let args: Option<Box<[Value]>> = self.terms.iter().map(Term::as_const).collect();
        args.map(|args| Fact { rel: self.rel, args })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::term::write_symbol(f, self.rel.as_str())?;
        if !self.terms.is_empty() {
            f.write_str("(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A ground atom `rel(v1, …, vn)` — the unit of storage and of the model.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The relation symbol.
    pub rel: Symbol,
    /// The ground arguments.
    pub args: Box<[Value]>,
}

impl Fact {
    /// Builds a fact from a relation name and ground arguments.
    pub fn new(rel: impl Into<Symbol>, args: impl Into<Box<[Value]>>) -> Fact {
        Fact { rel: rel.into(), args: args.into() }
    }

    /// A zero-ary fact (a propositional atom).
    pub fn prop(rel: impl Into<Symbol>) -> Fact {
        Fact { rel: rel.into(), args: Box::new([]) }
    }

    /// The number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The fact as a (non-ground-capable) atom.
    pub fn to_atom(&self) -> Atom {
        Atom { rel: self.rel, terms: self.args.iter().map(|&v| Term::Const(v)).collect() }
    }

    /// Parses a single ground fact such as `edge(a, 3)`.
    ///
    /// Convenience for tests and examples; see [`crate::parser`].
    pub fn parse(src: &str) -> Result<Fact, crate::error::ParseError> {
        crate::parser::parse_fact(src)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::term::write_symbol(f, self.rel.as_str())?;
        if !self.args.is_empty() {
            f.write_str("(")?;
            for (i, v) in self.args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_groundness() {
        let g = Atom::new("p", vec![Term::sym("a"), Term::int(2)]);
        assert!(g.is_ground());
        let ng = Atom::new("p", vec![Term::var("X")]);
        assert!(!ng.is_ground());
    }

    #[test]
    fn atom_vars() {
        let a = Atom::new("p", vec![Term::var("X"), Term::sym("c"), Term::var("Y")]);
        let vars: Vec<_> = a.vars().collect();
        assert_eq!(vars, vec![Symbol::new("X"), Symbol::new("Y")]);
    }

    #[test]
    fn atom_to_fact() {
        let a = Atom::new("p", vec![Term::sym("a")]);
        assert_eq!(a.to_fact(), Some(Fact::new("p", vec![Value::sym("a")])));
        let ng = Atom::new("p", vec![Term::var("X")]);
        assert_eq!(ng.to_fact(), None);
    }

    #[test]
    fn fact_round_trip_through_atom() {
        let f = Fact::new("edge", vec![Value::sym("a"), Value::int(3)]);
        assert_eq!(f.to_atom().to_fact(), Some(f.clone()));
        assert_eq!(f.arity(), 2);
    }

    #[test]
    fn zero_arity_display() {
        assert_eq!(Fact::prop("q").to_string(), "q");
        assert_eq!(Atom::new("q", vec![]).to_string(), "q");
    }

    #[test]
    fn display_formats() {
        let f = Fact::new("edge", vec![Value::sym("a"), Value::int(3)]);
        assert_eq!(f.to_string(), "edge(a, 3)");
    }
}
