//! Rule-body matching: enumerate the ground instances of a rule over a
//! database.
//!
//! The matcher orders positive literals greedily (most already-bound
//! variables first), seeks through per-column indexes when a column is
//! bound, and checks the negative literals — ground by rule safety — once
//! their variables are bound. One body literal may be designated the *delta*
//! literal and enumerated from a caller-supplied relation instead of the
//! database, which is the primitive underlying both semi-naive evaluation
//! and incremental (removed-tuple) firing.
//!
//! Two implementations share this contract:
//!
//! * the **compiled** path ([`super::plan`]) — plans built once per
//!   `(rule, delta_position)` and executed with a flat slot register file;
//!   the engines hold [`super::plan::CompiledRule`]s and call it directly.
//!   [`for_each_match_seeded`] / [`for_each_match`] are thin compatibility
//!   wrappers that compile on the fly (convenient for one-shot matching:
//!   tests, REPL queries, firing a freshly inserted rule once);
//! * the **interpreted** path ([`for_each_match_interpreted`]) — the
//!   original tuple-at-a-time interpreter with hash-map bindings, kept as
//!   the executable reference: the differential property suite checks the
//!   compiled matcher against it, and the plan-cache benchmark
//!   (`exp_e9_plancache`) measures what compilation buys.

use rustc_hash::FxHashMap;

use crate::atom::{Atom, Fact};
use crate::rule::Rule;
use crate::storage::{Database, Relation};
use crate::symbol::Symbol;
use crate::term::{Term, Value};

use super::plan::{greedy_order, CompiledPlan, MatchScratch};

/// Enumerates ground instances of `rule` over `db` (compiled path).
///
/// * `delta` — optionally `(body_position, relation)`: the literal at that
///   position is enumerated from the given relation instead of `db`. The
///   position may name a **negative** literal (incremental firing over
///   removed tuples); its absence from `db` is still checked.
/// * `seed` — initial variable bindings (used for targeted re-derivation).
/// * `callback(head, pos_body, neg_body)` — invoked per match; return
///   `false` to stop the enumeration early.
///
/// This compiles a [`CompiledPlan`] per invocation; callers on a hot path
/// should compile once and execute the plan directly.
pub fn for_each_match_seeded<F>(
    db: &Database,
    rule: &Rule,
    delta: Option<(usize, &Relation)>,
    seed: &[(Symbol, Value)],
    callback: F,
) where
    F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
{
    let plan = CompiledPlan::compile(rule, delta.map(|(i, _)| i));
    let mut scratch = MatchScratch::new();
    plan.for_each_derivation(db, delta.map(|(_, r)| r), seed, &mut scratch, callback);
}

/// [`for_each_match_seeded`] with no seed bindings.
pub fn for_each_match<F>(db: &Database, rule: &Rule, delta: Option<(usize, &Relation)>, callback: F)
where
    F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
{
    for_each_match_seeded(db, rule, delta, &[], callback);
}

// ---------------------------------------------------------------------------
// The interpreted reference implementation.
// ---------------------------------------------------------------------------

/// A variable assignment under construction (interpreted path).
#[derive(Default, Debug)]
pub struct Bindings {
    vals: FxHashMap<Symbol, Value>,
}

impl Bindings {
    /// Current value of a variable.
    pub fn get(&self, v: Symbol) -> Option<Value> {
        self.vals.get(&v).copied()
    }

    fn bind(&mut self, v: Symbol, val: Value) {
        self.vals.insert(v, val);
    }

    fn unbind(&mut self, v: Symbol) {
        self.vals.remove(&v);
    }

    /// Instantiates an atom; `None` if any variable is unbound.
    pub fn substitute(&self, atom: &Atom) -> Option<Fact> {
        let args: Option<Box<[Value]>> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => Some(*v),
                Term::Var(v) => self.get(*v),
            })
            .collect();
        args.map(|args| Fact { rel: atom.rel, args })
    }
}

/// The evaluation order for one rule / delta-position combination.
struct Plan {
    /// Positions (into `rule.body`) of literals to enumerate, in order.
    /// The delta literal, if any, comes first; the rest are the positive
    /// non-delta literals, greedily ordered ([`greedy_order`]).
    order: Vec<usize>,
}

/// Same contract as [`for_each_match_seeded`], evaluated by the original
/// interpreter: the literal order is re-derived per call and bindings live
/// in a hash map. Kept as the reference implementation for differential
/// tests and as the benchmark baseline.
pub fn for_each_match_interpreted<F>(
    db: &Database,
    rule: &Rule,
    delta: Option<(usize, &Relation)>,
    seed: &[(Symbol, Value)],
    mut callback: F,
) where
    F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
{
    let plan = Plan { order: greedy_order(rule, delta.map(|(i, _)| i)) };
    let mut bindings = Bindings::default();
    for &(v, val) in seed {
        bindings.bind(v, val);
    }
    let mut pos_facts: Vec<Fact> = Vec::with_capacity(plan.order.len());
    let mut trail: Vec<Symbol> = Vec::new();
    step(db, rule, &plan, delta, 0, &mut bindings, &mut pos_facts, &mut trail, &mut callback);
}

/// Binds `atom`'s variables against `tuple`; pushes fresh bindings on
/// `trail`. On mismatch, rolls back to `mark` and returns `false`.
fn try_bind(
    atom: &Atom,
    tuple: &[Value],
    b: &mut Bindings,
    trail: &mut Vec<Symbol>,
    mark: usize,
) -> bool {
    for (term, &val) in atom.terms.iter().zip(tuple) {
        let ok = match term {
            Term::Const(c) => *c == val,
            Term::Var(v) => match b.get(*v) {
                Some(bound) => bound == val,
                None => {
                    b.bind(*v, val);
                    trail.push(*v);
                    true
                }
            },
        };
        if !ok {
            rollback(b, trail, mark);
            return false;
        }
    }
    true
}

fn rollback(b: &mut Bindings, trail: &mut Vec<Symbol>, mark: usize) {
    while trail.len() > mark {
        b.unbind(trail.pop().expect("trail underflow"));
    }
}

/// Picks the cheapest access path for `atom` over `rel` given current
/// bindings, and iterates candidate tuples through `f`. Returns `false` if
/// `f` requested an early stop.
fn scan_candidates<F>(rel: &Relation, atom: &Atom, b: &Bindings, mut f: F) -> bool
where
    F: FnMut(&[Value]) -> bool,
{
    // Find the most selective bound column.
    let mut best: Option<(usize, Value, usize)> = None;
    for (c, term) in atom.terms.iter().enumerate() {
        let val = match term {
            Term::Const(v) => Some(*v),
            Term::Var(v) => b.get(*v),
        };
        if let Some(v) = val {
            let est = rel.estimate_bound(c, v);
            // (`match` rather than `Option::is_none_or`: MSRV 1.75.)
            let better = match best {
                Some((_, _, e)) => est < e,
                None => true,
            };
            if better {
                best = Some((c, v, est));
            }
        }
    }
    match best {
        Some((c, v, _)) => {
            for t in rel.scan_bound(c, v) {
                if !f(t) {
                    return false;
                }
            }
        }
        None => {
            for t in rel.iter() {
                if !f(t) {
                    return false;
                }
            }
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn step<F>(
    db: &Database,
    rule: &Rule,
    plan: &Plan,
    delta: Option<(usize, &Relation)>,
    oi: usize,
    bindings: &mut Bindings,
    pos_facts: &mut Vec<Fact>,
    trail: &mut Vec<Symbol>,
    callback: &mut F,
) -> bool
where
    F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
{
    if oi == plan.order.len() {
        return finish(db, rule, bindings, pos_facts, callback);
    }
    let li = plan.order[oi];
    let lit = &rule.body[li];
    let source: &Relation = match delta {
        Some((d, rel)) if d == li => rel,
        _ => match db.relation(lit.atom.rel) {
            Some(r) => r,
            None => return true, // empty relation: no matches, keep going
        },
    };
    // Collect candidate tuples first: the recursive step may consult `db`
    // again, and we must not hold `source`'s iterator across the callback
    // when source aliases db. Tuples are cheap to buffer per level.
    let mut keep_going = true;
    let mut candidates: Vec<TupleBuf> = Vec::new();
    scan_candidates(source, &lit.atom, bindings, |t| {
        candidates.push(t.into());
        true
    });
    for tuple in candidates {
        let mark = trail.len();
        if !try_bind(&lit.atom, &tuple, bindings, trail, mark) {
            continue;
        }
        if lit.positive {
            pos_facts.push(Fact { rel: lit.atom.rel, args: tuple });
        }
        keep_going = step(db, rule, plan, delta, oi + 1, bindings, pos_facts, trail, callback);
        if lit.positive {
            pos_facts.pop();
        }
        rollback(bindings, trail, mark);
        if !keep_going {
            break;
        }
    }
    keep_going
}

type TupleBuf = Box<[Value]>;

fn finish<F>(
    db: &Database,
    rule: &Rule,
    bindings: &Bindings,
    pos_facts: &[Fact],
    callback: &mut F,
) -> bool
where
    F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
{
    let mut neg_facts: Vec<Fact> = Vec::new();
    for lit in rule.body.iter().filter(|l| !l.positive) {
        let fact = bindings
            .substitute(&lit.atom)
            .expect("negative literal not ground at finish; rule safety violated");
        if db.contains(&fact) {
            return true; // this match fails; continue enumeration
        }
        neg_facts.push(fact);
    }
    let head =
        bindings.substitute(&rule.head).expect("head not ground at finish; rule safety violated");
    callback(head, pos_facts, &neg_facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::parse_facts;

    fn db(src: &str) -> Database {
        Database::from_facts(parse_facts(src))
    }

    /// Both implementations, under one test body.
    fn for_both(
        db: &Database,
        rule: &Rule,
        delta: Option<(usize, &Relation)>,
        seed: &[(Symbol, Value)],
        mut check: impl FnMut(&str, Vec<(String, usize, usize)>),
    ) {
        let mut compiled = Vec::new();
        for_each_match_seeded(db, rule, delta, seed, |h, p, n| {
            compiled.push((h.to_string(), p.len(), n.len()));
            true
        });
        check("compiled", compiled);
        let mut interpreted = Vec::new();
        for_each_match_interpreted(db, rule, delta, seed, |h, p, n| {
            interpreted.push((h.to_string(), p.len(), n.len()));
            true
        });
        check("interpreted", interpreted);
    }

    fn all_heads(db: &Database, rule: &str) -> Vec<String> {
        let rule = Rule::parse(rule).unwrap();
        let mut out = Vec::new();
        for_each_match(db, &rule, None, |h, _, _| {
            out.push(h.to_string());
            true
        });
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn single_literal_match() {
        let db = db("e(1, 2). e(2, 3).");
        assert_eq!(all_heads(&db, "p(X, Y) :- e(X, Y)."), vec!["p(1, 2)", "p(2, 3)"]);
    }

    #[test]
    fn join_two_literals() {
        let db = db("e(1, 2). e(2, 3). e(3, 4).");
        assert_eq!(all_heads(&db, "p(X, Z) :- e(X, Y), e(Y, Z)."), vec!["p(1, 3)", "p(2, 4)"]);
    }

    #[test]
    fn constants_in_body_filter() {
        let db = db("e(1, 2). e(2, 3).");
        assert_eq!(all_heads(&db, "p(Y) :- e(1, Y)."), vec!["p(2)"]);
    }

    #[test]
    fn repeated_variable_within_literal() {
        let db = db("e(1, 1). e(1, 2).");
        assert_eq!(all_heads(&db, "p(X) :- e(X, X)."), vec!["p(1)"]);
    }

    #[test]
    fn negative_literal_filters() {
        let db = db("s(1). s(2). a(1).");
        assert_eq!(all_heads(&db, "r(X) :- s(X), !a(X)."), vec!["r(2)"]);
    }

    #[test]
    fn negative_literal_on_missing_relation_always_holds() {
        let db = db("s(1).");
        assert_eq!(all_heads(&db, "r(X) :- s(X), !ghost(X)."), vec!["r(1)"]);
    }

    #[test]
    fn empty_positive_relation_yields_nothing() {
        let db = db("a(1).");
        assert!(all_heads(&db, "p(X) :- zzz(X).").is_empty());
    }

    #[test]
    fn ground_rule_with_no_positive_body() {
        let db = db("a(1).");
        assert_eq!(all_heads(&db, "q :- !p."), vec!["q"]);
        let db2 = db_with_p();
        assert!(all_heads(&db2, "q :- !p.").is_empty());
    }

    fn db_with_p() -> Database {
        db("p.")
    }

    #[test]
    fn delta_restricts_enumeration() {
        let dbase = db("e(1, 2). e(2, 3).");
        let rule = Rule::parse("p(X, Y) :- e(X, Y).").unwrap();
        let mut delta_rel = Relation::new(2);
        delta_rel.insert(vec![Value::int(2), Value::int(3)].into());
        for_both(&dbase, &rule, Some((0, &delta_rel)), &[], |path, out| {
            assert_eq!(out.len(), 1, "[{path}]");
            assert_eq!(out[0].0, "p(2, 3)", "[{path}]");
        });
    }

    #[test]
    fn delta_on_negative_literal_enumerates_removed_tuples() {
        // r(X) :- s(X), !a(X): fire for tuples recently REMOVED from `a`.
        let dbase = db("s(1). s(2).");
        let rule = Rule::parse("r(X) :- s(X), !a(X).").unwrap();
        let mut removed = Relation::new(1);
        removed.insert(vec![Value::int(1)].into());
        for_both(&dbase, &rule, Some((1, &removed)), &[], |path, out| {
            assert_eq!(out, vec![("r(1)".to_string(), 1, 1)], "[{path}]");
        });
    }

    #[test]
    fn delta_on_negative_literal_still_checks_absence() {
        // If the tuple is (still or again) present in db, the match fails.
        let dbase = db("s(1). a(1).");
        let rule = Rule::parse("r(X) :- s(X), !a(X).").unwrap();
        let mut removed = Relation::new(1);
        removed.insert(vec![Value::int(1)].into());
        for_both(&dbase, &rule, Some((1, &removed)), &[], |path, out| {
            assert!(out.is_empty(), "[{path}]");
        });
    }

    #[test]
    fn seeded_match_restricts_bindings() {
        let dbase = db("e(1, 2). e(2, 3).");
        let rule = Rule::parse("p(X, Y) :- e(X, Y).").unwrap();
        let seed = [(Symbol::new("X"), Value::int(2))];
        for_both(&dbase, &rule, None, &seed, |path, out| {
            assert_eq!(out.len(), 1, "[{path}]");
            assert_eq!(out[0].0, "p(2, 3)", "[{path}]");
        });
    }

    #[test]
    fn early_stop_halts_enumeration() {
        let dbase = db("e(1). e(2). e(3).");
        let rule = Rule::parse("p(X) :- e(X).").unwrap();
        let mut count = 0;
        for_each_match(&dbase, &rule, None, |_, _, _| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn body_facts_reported_in_order() {
        let dbase = db("e(1, 2). f(2, 7). a(9).");
        let rule = Rule::parse("p(X, Z) :- e(X, Y), f(Y, Z), !a(Z).").unwrap();
        for_both(&dbase, &rule, None, &[], |path, seen| {
            assert_eq!(seen, vec![("p(1, 7)".to_string(), 2, 1)], "[{path}]");
        });
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let dbase = db("a(1). a(2). b(7). b(8).");
        assert_eq!(
            all_heads(&dbase, "p(X, Y) :- a(X), b(Y)."),
            vec!["p(1, 7)", "p(1, 8)", "p(2, 7)", "p(2, 8)"]
        );
    }

    #[test]
    fn self_join_same_relation() {
        let dbase = db("e(1, 2). e(2, 1).");
        assert_eq!(all_heads(&dbase, "p(X) :- e(X, Y), e(Y, X)."), vec!["p(1)", "p(2)"]);
    }
}
