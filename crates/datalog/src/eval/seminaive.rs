//! The delta-driven saturation mechanism (paper §5.2).
//!
//! "Each rule when fired produces an increase (delta) of the relation in the
//! conclusion of the rule. When this increase is non-empty all rules using
//! this relation in a hypothesis can be fired. The process stops when all
//! increases are empty." — a rule is *helpful* when some positive hypothesis
//! relation has a non-empty increase.
//!
//! All facts produced in one delta are deduced by the same rule, so the
//! one-level rule-pointer supports of §5.1 can be updated per chunk; this is
//! why the paper prefers that support form for implementation.

use rustc_hash::FxHashMap;

use crate::atom::Fact;
use crate::storage::{Database, Relation, TupleData};
use crate::symbol::Symbol;

use super::plan::{CompiledRule, MatchScratch};
use super::NewFactSink;

/// Statistics from one delta-driven run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Rule firings (rule × delta-position evaluations).
    pub firings: u64,
    /// Delta rounds executed (excluding the initial full round).
    pub rounds: u64,
}

/// Groups facts into per-relation delta stores.
pub(crate) fn group_deltas(facts: &[Fact]) -> FxHashMap<Symbol, Relation> {
    let mut by_rel: FxHashMap<Symbol, Relation> = FxHashMap::default();
    for f in facts {
        by_rel.entry(f.rel).or_insert_with(|| Relation::new(f.arity())).insert(f.args.clone());
    }
    by_rel
}

/// Closes `db` under `rules`, delta-driven.
///
/// The first round fires every rule in full (this also covers rules with no
/// positive hypotheses, whose value cannot change afterwards within the
/// stratum); subsequent rounds fire only helpful rules restricted to the
/// current increases. `sink` receives each new fact with the rule that
/// produced it. Returns the facts added.
pub fn saturate<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    sink: &mut S,
    stats: &mut DeltaStats,
) -> Vec<Fact> {
    let mut scratch = MatchScratch::new();
    let delta = full_round(db, rules, sink, stats, &mut scratch);
    let mut added = delta.clone();
    drive_with(db, rules, delta, sink, stats, &mut added, &mut scratch);
    added
}

/// The initial full round: fires every rule once over the whole database
/// (covering rules with no positive hypotheses, whose value cannot change
/// afterwards within the stratum) and returns the facts added — the first
/// increase. Rules fire in order with immediate insertion, so each rule
/// sees its predecessors' new facts. Shared with [`super::par`], whose
/// first round must match this one exactly.
pub(crate) fn full_round<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    sink: &mut S,
    stats: &mut DeltaStats,
    scratch: &mut MatchScratch,
) -> Vec<Fact> {
    let mut delta: Vec<Fact> = Vec::new();
    for cr in rules {
        stats.firings += 1;
        let rid = cr.id();
        let mut out: Vec<Fact> = Vec::new();
        cr.plan().for_each_head(db, None, &[], scratch, |head| {
            if db.contains(&head) {
                sink.on_existing_fact(rid, &head);
            } else {
                out.push(head);
            }
            true
        });
        for f in out {
            if db.insert(f.clone()) {
                sink.on_new_fact(rid, &f);
                delta.push(f);
            }
        }
    }
    delta
}

/// Runs delta rounds from an initial increase until all increases are empty.
pub(crate) fn drive<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    delta: Vec<Fact>,
    sink: &mut S,
    stats: &mut DeltaStats,
    added: &mut Vec<Fact>,
) {
    drive_with(db, rules, delta, sink, stats, added, &mut MatchScratch::new());
}

/// [`drive`] with caller-owned scratch buffers (saturation reuses the ones
/// warmed by its first full round).
pub(crate) fn drive_with<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    mut delta: Vec<Fact>,
    sink: &mut S,
    stats: &mut DeltaStats,
    added: &mut Vec<Fact>,
    scratch: &mut MatchScratch,
) {
    while !delta.is_empty() {
        stats.rounds += 1;
        let by_rel = group_deltas(&delta);
        let mut next: Vec<Fact> = Vec::new();
        for cr in rules {
            let rid = cr.id();
            for (li, lit) in cr.rule().body.iter().enumerate() {
                if !lit.positive {
                    continue;
                }
                let Some(drel) = by_rel.get(&lit.atom.rel) else { continue };
                stats.firings += 1;
                let mut out: Vec<Fact> = Vec::new();
                cr.delta_plan(li).for_each_head(db, Some(drel), &[], scratch, |head| {
                    if db.contains(&head) {
                        sink.on_existing_fact(rid, &head);
                    } else {
                        out.push(head);
                    }
                    true
                });
                for f in out {
                    if db.insert(f.clone()) {
                        sink.on_new_fact(rid, &f);
                        next.push(f.clone());
                        added.push(f);
                    }
                }
            }
        }
        delta = next;
    }
}

/// Converts per-relation tuple lists into delta [`Fact`]s.
pub fn facts_from_tuples(map: &FxHashMap<Symbol, Vec<TupleData>>) -> Vec<Fact> {
    map.iter()
        .flat_map(|(&rel, ts)| ts.iter().map(move |t| Fact { rel, args: t.clone() }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive;
    use crate::eval::{NullNewFact, NullSink};
    use crate::program::{Program, RuleId};

    fn setup(src: &str) -> (Database, Vec<CompiledRule>) {
        let p = Program::parse(src).unwrap();
        let db = Database::from_facts(p.facts().cloned());
        let rules = crate::eval::plan::compile_rules(p.rules().map(|(id, r)| (id, r.clone())));
        (db, rules)
    }

    #[test]
    fn agrees_with_naive_on_transitive_closure() {
        let src = "e(1, 2). e(2, 3). e(3, 4). e(4, 1).
                   p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).";
        let (mut db_n, rules) = setup(src);
        let (mut db_s, _) = setup(src);
        naive::saturate(&mut db_n, &rules, &mut NullSink, &mut Default::default());
        saturate(&mut db_s, &rules, &mut NullNewFact, &mut Default::default());
        assert_eq!(db_n, db_s);
        assert_eq!(db_s.count(Symbol::new("p")), 16);
    }

    #[test]
    fn fires_rules_without_positive_body_once() {
        let (mut db, rules) = setup("q :- !p.");
        saturate(&mut db, &rules, &mut NullNewFact, &mut Default::default());
        assert!(db.contains_parsed("q"));
    }

    #[test]
    fn sink_reports_rule_pointers() {
        struct Collect(Vec<(RuleId, String)>);
        impl NewFactSink for Collect {
            fn on_new_fact(&mut self, rule: RuleId, fact: &Fact) {
                self.0.push((rule, fact.to_string()));
            }
        }
        let (mut db, rules) = setup("a(1). p(X) :- a(X). q(X) :- p(X).");
        let mut sink = Collect(Vec::new());
        saturate(&mut db, &rules, &mut sink, &mut Default::default());
        let p_rule = rules[0].id();
        let q_rule = rules[1].id();
        assert!(sink.0.contains(&(p_rule, "p(1)".to_string())));
        assert!(sink.0.contains(&(q_rule, "q(1)".to_string())));
        assert_eq!(sink.0.len(), 2);
    }

    #[test]
    fn drive_continues_from_seed() {
        let (mut db, rules) = setup("p(X, Z) :- p(X, Y), e(Y, Z). e(2, 3). e(3, 4).");
        db.insert(Fact::parse("p(1, 2)").unwrap());
        let seed = vec![Fact::parse("p(1, 2)").unwrap()];
        let mut added = Vec::new();
        drive(&mut db, &rules, seed, &mut NullNewFact, &mut Default::default(), &mut added);
        assert!(db.contains_parsed("p(1, 3)"));
        assert!(db.contains_parsed("p(1, 4)"));
        assert_eq!(added.len(), 2);
    }

    #[test]
    fn helpful_rule_definition_matches_paper() {
        // A rule is fired in delta rounds only when a positive hypothesis
        // has a non-empty increase: the `b`-rule never refires.
        let (mut db, rules) = setup("a(1). b(X) :- a(X). c(X) :- b(X).");
        let mut stats = DeltaStats::default();
        saturate(&mut db, &rules, &mut NullNewFact, &mut stats);
        assert!(db.contains_parsed("c(1)"));
        // Round 0 fires both rules with immediate insertion, so b(1) and
        // c(1) both appear there. Round 1 (delta = {b(1), c(1)}) fires only
        // the helpful c-rule, which adds nothing; no round 2 occurs.
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn random_graph_agrees_with_naive() {
        // Deterministic pseudo-random edges; checks the two engines agree.
        let mut edges = String::new();
        let mut x: u64 = 7;
        for _ in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (x >> 33) % 12;
            let b = (x >> 12) % 12;
            edges.push_str(&format!("e({a}, {b}). "));
        }
        let src = format!("{edges} p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).");
        let (mut db_n, rules) = setup(&src);
        let (mut db_s, _) = setup(&src);
        naive::saturate(&mut db_n, &rules, &mut NullSink, &mut Default::default());
        saturate(&mut db_s, &rules, &mut NullNewFact, &mut Default::default());
        assert_eq!(db_n, db_s);
    }
}
