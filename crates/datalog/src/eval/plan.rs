//! Compiled rule-body matching: plans built once, executed many times.
//!
//! [`super::matcher`] interprets a rule per invocation — it re-derives the
//! literal order and threads bindings through a hash map keyed by variable
//! symbols. Every maintenance strategy bottoms out in rule-body matching,
//! so that interpretation overhead is paid on the hottest path of the whole
//! system. This module closes the gap the way semi-naive Datalog engines do
//! (DRed / Soufflé-style staged compilation): each `(rule, delta_position)`
//! pair is lowered **once** into a [`CompiledPlan`] and reused across every
//! saturation round.
//!
//! Compilation resolves, up front:
//!
//! * the greedy literal order (most-bound-first, deterministic tie-break on
//!   the smallest body index),
//! * a dense renumbering of the rule's variables into **slots** — bindings
//!   become a flat register file (`Vec<Option<Value>>`) instead of a hash
//!   map,
//! * per column of each scanned literal, whether it is *bound* at that
//!   point (compare, and a candidate for an index seek) or *free* (bind
//!   into a slot),
//! * the placement of each negative check at the **earliest** point all its
//!   slots are bound, so failing matches die before enumerating the rest of
//!   the join.
//!
//! Execution reuses caller-owned [`MatchScratch`] buffers; the inner loop
//! performs no allocation beyond the facts it emits.

use crate::atom::{Atom, Fact};
use crate::program::RuleId;
use crate::rule::Rule;
use crate::storage::{RelSource, Relation};
use crate::symbol::Symbol;
use crate::term::{Term, Value};

/// What to do with one column of a scanned literal, given everything bound
/// before it.
#[derive(Clone, Copy, Debug)]
enum ColOp {
    /// The rule has a constant here: candidate tuples must carry it.
    Const(Value),
    /// The variable is already bound (earlier literal, or an earlier column
    /// of this one): compare against the register.
    Check(u32),
    /// First occurrence of the variable in the evaluation order: bind the
    /// tuple's value into the register. (A seed may have pre-bound the
    /// register, in which case this degenerates to a check.)
    Bind(u32),
}

/// One literal enumerated from storage.
#[derive(Clone, Debug)]
struct ScanStep {
    /// Position in `rule.body` (identifies the delta literal).
    body_idx: usize,
    rel: Symbol,
    arity: usize,
    cols: Box<[ColOp]>,
    /// Whether the scanned literal is positive (its tuples are reported as
    /// part of the positive body in full-derivation mode).
    positive: bool,
}

/// A ground atom template: registers and constants.
#[derive(Clone, Debug)]
struct AtomTemplate {
    rel: Symbol,
    cols: Box<[ColOp]>, // never `Bind` — templates are fully bound
}

impl AtomTemplate {
    /// Writes the instantiated tuple into `buf`.
    fn substitute(&self, regs: &[Option<Value>], buf: &mut Vec<Value>) {
        buf.clear();
        for col in self.cols.iter() {
            buf.push(match col {
                ColOp::Const(v) => *v,
                ColOp::Check(s) | ColOp::Bind(s) => {
                    regs[*s as usize].expect("template slot unbound; plan compilation bug")
                }
            });
        }
    }

    fn to_fact(&self, regs: &[Option<Value>]) -> Fact {
        let args: Box<[Value]> = self
            .cols
            .iter()
            .map(|col| match col {
                ColOp::Const(v) => *v,
                ColOp::Check(s) | ColOp::Bind(s) => {
                    regs[*s as usize].expect("template slot unbound; plan compilation bug")
                }
            })
            .collect();
        Fact { rel: self.rel, args }
    }
}

/// One operation of a compiled plan.
#[derive(Clone, Debug)]
enum Op {
    /// Enumerate a literal (from the database, or from the delta relation
    /// when its body position is the plan's delta position).
    Scan(ScanStep),
    /// Check that a — now fully bound — negative literal is absent from the
    /// database. The index points into the plan's negative templates.
    NegCheck(usize),
}

/// The compiled evaluation strategy for one `(rule, delta_position)` pair.
///
/// Build with [`CompiledPlan::compile`]; execute with
/// [`CompiledPlan::for_each_head`] (hot path — heads only) or
/// [`CompiledPlan::for_each_derivation`] (reports the ground body as the
/// naive engine's [`super::DerivationSink`] requires).
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    delta_idx: Option<usize>,
    num_slots: usize,
    /// Slot → variable, in slot order (seed translation, tests).
    slot_vars: Vec<Symbol>,
    ops: Vec<Op>,
    num_scans: usize,
    head: AtomTemplate,
    /// Negative literals in body order (reporting order for `neg_body`).
    neg_templates: Vec<AtomTemplate>,
}

/// The greedy literal order for `rule` with an optional delta literal.
///
/// The delta literal (which may be negative) comes first; the remaining
/// positive literals follow most-bound-first: at each step the literal with
/// the highest score — `2 ×` already-bound variables `+` constant columns —
/// is chosen, and **ties break to the smallest body index**, so the order
/// is a deterministic function of the rule text alone.
pub fn greedy_order(rule: &Rule, delta_idx: Option<usize>) -> Vec<usize> {
    let mut order = Vec::new();
    let mut bound: Vec<Symbol> = Vec::new();
    if let Some(d) = delta_idx {
        order.push(d);
        bound.extend(rule.body[d].atom.vars());
    }
    let mut remaining: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, l)| l.positive && Some(*i) != delta_idx)
        .map(|(i, _)| i)
        .collect();
    while !remaining.is_empty() {
        let mut best_ri = 0;
        let mut best_score = 0;
        // `remaining` stays sorted ascending (`Vec::remove` preserves
        // order), so a strict `>` keeps the smallest body index on ties.
        for (ri, &i) in remaining.iter().enumerate() {
            let lit = &rule.body[i];
            let score = lit.atom.vars().filter(|v| bound.contains(v)).count() * 2
                + lit.atom.terms.iter().filter(|t| !t.is_var()).count();
            if ri == 0 || score > best_score {
                best_ri = ri;
                best_score = score;
            }
        }
        let i = remaining.remove(best_ri);
        order.push(i);
        bound.extend(rule.body[i].atom.vars());
    }
    order
}

impl CompiledPlan {
    /// Compiles `rule` for the given delta position (`None` for full
    /// enumeration; the position may name a negative literal — incremental
    /// firing over removed tuples).
    pub fn compile(rule: &Rule, delta_idx: Option<usize>) -> CompiledPlan {
        let order = greedy_order(rule, delta_idx);

        // Dense slot assignment, in first-binding order.
        let mut slot_vars: Vec<Symbol> = Vec::new();
        let slot_of = |slot_vars: &mut Vec<Symbol>, v: Symbol| -> u32 {
            match slot_vars.iter().position(|&s| s == v) {
                Some(i) => i as u32,
                None => {
                    slot_vars.push(v);
                    (slot_vars.len() - 1) as u32
                }
            }
        };

        let mut ops: Vec<Op> = Vec::new();
        let mut statically_bound: Vec<Symbol> = Vec::new();

        // Negative literals, in body order; each is emitted as a NegCheck at
        // the earliest prefix of the scan order that binds all its
        // variables. The delta literal, when negative, is *also* scanned —
        // the check still runs (its absence from the database is part of
        // the match).
        let neg_literals: Vec<usize> =
            rule.body.iter().enumerate().filter(|(_, l)| !l.positive).map(|(i, _)| i).collect();
        // Templates indexed in body order; filled in at placement time
        // (slot assignments exist once the literal's variables are bound).
        let mut neg_slots: Vec<Option<AtomTemplate>> = vec![None; neg_literals.len()];

        fn compile_template(slot_vars: &[Symbol], atom: &Atom) -> AtomTemplate {
            let cols: Box<[ColOp]> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => ColOp::Const(*v),
                    Term::Var(v) => {
                        let i = slot_vars
                            .iter()
                            .position(|&s| s == *v)
                            .expect("template variable has no slot; rule safety violated");
                        ColOp::Check(i as u32)
                    }
                })
                .collect();
            AtomTemplate { rel: atom.rel, cols }
        }

        // Emits every not-yet-placed negative check whose variables are all
        // bound. Ground negative literals run before the first scan and
        // prune the whole enumeration.
        let flush_negs = |ops: &mut Vec<Op>,
                          neg_slots: &mut Vec<Option<AtomTemplate>>,
                          slot_vars: &[Symbol],
                          statically_bound: &Vec<Symbol>| {
            for (k, &li) in neg_literals.iter().enumerate() {
                if neg_slots[k].is_some() {
                    continue;
                }
                let atom = &rule.body[li].atom;
                if atom.vars().all(|v| statically_bound.contains(&v)) {
                    neg_slots[k] = Some(compile_template(slot_vars, atom));
                    ops.push(Op::NegCheck(k));
                }
            }
        };

        flush_negs(&mut ops, &mut neg_slots, &slot_vars, &statically_bound);

        let mut num_scans = 0;
        for &li in &order {
            let lit = &rule.body[li];
            let mut seen_here: Vec<Symbol> = Vec::new();
            let cols: Box<[ColOp]> = lit
                .atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => ColOp::Const(*v),
                    Term::Var(v) => {
                        let s = slot_of(&mut slot_vars, *v);
                        if statically_bound.contains(v) || seen_here.contains(v) {
                            ColOp::Check(s)
                        } else {
                            seen_here.push(*v);
                            ColOp::Bind(s)
                        }
                    }
                })
                .collect();
            ops.push(Op::Scan(ScanStep {
                body_idx: li,
                rel: lit.atom.rel,
                arity: lit.atom.terms.len(),
                cols,
                positive: lit.positive,
            }));
            num_scans += 1;
            statically_bound.extend(seen_here);
            flush_negs(&mut ops, &mut neg_slots, &slot_vars, &statically_bound);
        }
        let neg_templates: Vec<AtomTemplate> = neg_slots
            .into_iter()
            .map(|t| t.expect("negative literal never fully bound; rule safety violated"))
            .collect();

        let head = compile_template(&slot_vars, &rule.head);

        CompiledPlan {
            delta_idx,
            num_slots: slot_vars.len(),
            slot_vars,
            ops,
            num_scans,
            head,
            neg_templates,
        }
    }

    /// The body positions of the scanned literals, in evaluation order.
    pub fn literal_order(&self) -> Vec<usize> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Scan(s) => Some(s.body_idx),
                Op::NegCheck(_) => None,
            })
            .collect()
    }

    /// Number of variable slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The delta body position this plan was compiled for.
    pub fn delta_idx(&self) -> Option<usize> {
        self.delta_idx
    }

    /// Enumerates match heads only — the hot path. `delta` supplies the
    /// relation for the plan's delta literal (required iff the plan was
    /// compiled with one). `seed` pre-binds variables (unknown variables are
    /// inert, as in the interpreted matcher). Return `false` from `f` to
    /// stop early.
    ///
    /// Generic over [`RelSource`] so the same plan runs against the live
    /// [`crate::storage::Database`] and against an immutable
    /// [`crate::storage::ModelSnapshot`] (the MVCC read path).
    pub fn for_each_head<S, F>(
        &self,
        db: &S,
        delta: Option<&Relation>,
        seed: &[(Symbol, Value)],
        scratch: &mut MatchScratch,
        mut f: F,
    ) where
        S: RelSource + ?Sized,
        F: FnMut(Fact) -> bool,
    {
        self.run(db, delta, seed, scratch, false, &mut |head, _, _| f(head));
    }

    /// Enumerates full derivations: `f(head, pos_body, neg_body)` with the
    /// ground positive body in evaluation order and the ground negative
    /// body in body order — the contract of
    /// [`super::matcher::for_each_match_seeded`].
    pub fn for_each_derivation<S, F>(
        &self,
        db: &S,
        delta: Option<&Relation>,
        seed: &[(Symbol, Value)],
        scratch: &mut MatchScratch,
        mut f: F,
    ) where
        S: RelSource + ?Sized,
        F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
    {
        self.run(db, delta, seed, scratch, true, &mut f);
    }

    fn run<S, F>(
        &self,
        db: &S,
        delta: Option<&Relation>,
        seed: &[(Symbol, Value)],
        scratch: &mut MatchScratch,
        collect_bodies: bool,
        f: &mut F,
    ) where
        S: RelSource + ?Sized,
        F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
    {
        debug_assert_eq!(
            self.delta_idx.is_some(),
            delta.is_some(),
            "delta relation must match the plan's delta position"
        );
        scratch.reset(self.num_slots, self.num_scans);
        for &(v, val) in seed {
            // Unknown seed variables cannot occur in the head, a negative
            // literal, or the body (safety), so they are inert; last write
            // wins, as in the interpreted matcher.
            if let Some(i) = self.slot_vars.iter().position(|&s| s == v) {
                scratch.regs[i] = Some(val);
            }
        }
        self.step(db, delta, 0, 0, scratch, collect_bodies, f);
    }

    /// Executes ops from `oi` on; `depth` counts scans entered so far.
    /// Returns `false` when the callback requested an early stop.
    #[allow(clippy::too_many_arguments)]
    fn step<S, F>(
        &self,
        db: &S,
        delta: Option<&Relation>,
        oi: usize,
        depth: usize,
        scratch: &mut MatchScratch,
        collect_bodies: bool,
        f: &mut F,
    ) -> bool
    where
        S: RelSource + ?Sized,
        F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
    {
        let Some(op) = self.ops.get(oi) else {
            return self.emit(scratch, collect_bodies, f);
        };
        match op {
            Op::NegCheck(k) => {
                let tpl = &self.neg_templates[*k];
                let mut buf = std::mem::take(&mut scratch.neg_buf);
                tpl.substitute(&scratch.regs, &mut buf);
                let present = db.relation(tpl.rel).is_some_and(|r| r.contains(&buf));
                scratch.neg_buf = buf;
                if present {
                    return true; // this (partial) match fails; keep enumerating
                }
                self.step(db, delta, oi + 1, depth, scratch, collect_bodies, f)
            }
            Op::Scan(scan) => {
                let source: &Relation = if Some(scan.body_idx) == self.delta_idx {
                    delta.expect("delta relation supplied for delta plan")
                } else {
                    match db.relation(scan.rel) {
                        Some(r) => r,
                        None => return true, // empty relation: no matches
                    }
                };
                // Buffer the candidate tuples (flat, per scan depth): the
                // buffer survives across invocations, so the steady state
                // allocates nothing.
                let mut buf = std::mem::take(&mut scratch.levels[depth]);
                buf.clear();
                self.collect_candidates(scan, source, &scratch.regs, &mut buf);
                let mut keep_going = true;
                if scan.arity == 0 {
                    // Zero-arity relation: `buf` stays empty; the number of
                    // candidate (empty) tuples is the live count (0 or 1).
                    for _ in 0..source.len() {
                        keep_going =
                            self.step(db, delta, oi + 1, depth + 1, scratch, collect_bodies, f);
                        if !keep_going {
                            break;
                        }
                    }
                } else {
                    for tuple in buf.chunks_exact(scan.arity) {
                        let mark = scratch.trail.len();
                        if !try_bind(&scan.cols, tuple, &mut scratch.regs, &mut scratch.trail) {
                            rollback(&mut scratch.regs, &mut scratch.trail, mark);
                            continue;
                        }
                        let pushed_pos = collect_bodies && scan.positive;
                        if pushed_pos {
                            scratch.pos.push(Fact { rel: scan.rel, args: tuple.into() });
                        }
                        keep_going =
                            self.step(db, delta, oi + 1, depth + 1, scratch, collect_bodies, f);
                        if pushed_pos {
                            scratch.pos.pop();
                        }
                        rollback(&mut scratch.regs, &mut scratch.trail, mark);
                        if !keep_going {
                            break;
                        }
                    }
                }
                scratch.levels[depth] = buf;
                keep_going
            }
        }
    }

    /// Picks the cheapest access path for `scan` given the registers and
    /// appends the candidate tuples, flattened, to `buf`.
    fn collect_candidates(
        &self,
        scan: &ScanStep,
        source: &Relation,
        regs: &[Option<Value>],
        buf: &mut Vec<Value>,
    ) {
        // The most selective currently-known column wins. `Bind` columns
        // participate too: a seed may have pre-bound their slot.
        let mut best: Option<(usize, Value, usize)> = None;
        for (c, col) in scan.cols.iter().enumerate() {
            let val = match col {
                ColOp::Const(v) => Some(*v),
                ColOp::Check(s) | ColOp::Bind(s) => regs[*s as usize],
            };
            if let Some(v) = val {
                let est = source.estimate_bound(c, v);
                // (`match` rather than `Option::is_none_or`: MSRV 1.75.)
                let better = match best {
                    Some((_, _, e)) => est < e,
                    None => true,
                };
                if better {
                    best = Some((c, v, est));
                }
            }
        }
        match best {
            Some((c, v, _)) => {
                for t in source.scan_bound(c, v) {
                    buf.extend_from_slice(t);
                }
            }
            None => {
                for t in source.iter() {
                    buf.extend_from_slice(t);
                }
            }
        }
    }

    fn emit<F>(&self, scratch: &mut MatchScratch, collect_bodies: bool, f: &mut F) -> bool
    where
        F: FnMut(Fact, &[Fact], &[Fact]) -> bool,
    {
        let head = self.head.to_fact(&scratch.regs);
        if !collect_bodies {
            return f(head, &[], &[]);
        }
        scratch.neg.clear();
        for tpl in &self.neg_templates {
            scratch.neg.push(tpl.to_fact(&scratch.regs));
        }
        f(head, &scratch.pos, &scratch.neg)
    }
}

/// Binds a candidate tuple against the scan's column descriptors, pushing
/// fresh bindings on the trail. On mismatch the caller rolls back.
#[inline]
fn try_bind(
    cols: &[ColOp],
    tuple: &[Value],
    regs: &mut [Option<Value>],
    trail: &mut Vec<u32>,
) -> bool {
    for (col, &val) in cols.iter().zip(tuple) {
        match col {
            ColOp::Const(c) => {
                if *c != val {
                    return false;
                }
            }
            ColOp::Check(s) => {
                if regs[*s as usize] != Some(val) {
                    return false;
                }
            }
            ColOp::Bind(s) => match regs[*s as usize] {
                Some(bound) => {
                    if bound != val {
                        return false;
                    }
                }
                None => {
                    regs[*s as usize] = Some(val);
                    trail.push(*s);
                }
            },
        }
    }
    true
}

#[inline]
fn rollback(regs: &mut [Option<Value>], trail: &mut Vec<u32>, mark: usize) {
    while trail.len() > mark {
        let s = trail.pop().expect("trail underflow");
        regs[s as usize] = None;
    }
}

/// Reusable buffers for plan execution. Create one per saturation loop (or
/// engine) and pass it to every invocation; all inner-loop state lives here
/// and is recycled, so steady-state matching allocates only emitted facts.
#[derive(Default)]
pub struct MatchScratch {
    regs: Vec<Option<Value>>,
    trail: Vec<u32>,
    /// Flat candidate-tuple buffer per scan depth.
    levels: Vec<Vec<Value>>,
    /// Ground positive body under construction (full-derivation mode).
    pos: Vec<Fact>,
    /// Ground negative body, rebuilt per emitted match.
    neg: Vec<Fact>,
    /// Substitution buffer for negative membership checks.
    neg_buf: Vec<Value>,
}

impl MatchScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }

    fn reset(&mut self, num_slots: usize, num_scans: usize) {
        self.regs.clear();
        self.regs.resize(num_slots, None);
        self.trail.clear();
        if self.levels.len() < num_scans {
            self.levels.resize_with(num_scans, Vec::new);
        }
        self.pos.clear();
        self.neg.clear();
    }
}

/// A rule compiled for every way the engines fire it: full enumeration plus
/// one delta plan per body position (positive positions serve semi-naive
/// rounds, negative positions serve incremental removed-tuple firing).
#[derive(Clone, Debug)]
pub struct CompiledRule {
    id: RuleId,
    rule: Rule,
    main: CompiledPlan,
    by_delta: Vec<CompiledPlan>,
}

impl CompiledRule {
    /// Compiles `rule` under `id`.
    pub fn compile(id: RuleId, rule: Rule) -> CompiledRule {
        let main = CompiledPlan::compile(&rule, None);
        let by_delta =
            (0..rule.body.len()).map(|i| CompiledPlan::compile(&rule, Some(i))).collect();
        CompiledRule { id, rule, main, by_delta }
    }

    /// The rule's id.
    pub fn id(&self) -> RuleId {
        self.id
    }

    /// The source rule.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }

    /// The full-enumeration plan.
    pub fn plan(&self) -> &CompiledPlan {
        &self.main
    }

    /// The plan with the delta at body position `li`.
    pub fn delta_plan(&self, li: usize) -> &CompiledPlan {
        &self.by_delta[li]
    }
}

/// Compiles a batch of rules (the shape [`crate::model::Strata`] stores).
pub fn compile_rules(rules: impl IntoIterator<Item = (RuleId, Rule)>) -> Vec<CompiledRule> {
    rules.into_iter().map(|(id, r)| CompiledRule::compile(id, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{parse_facts, Database};

    fn db(src: &str) -> Database {
        Database::from_facts(parse_facts(src))
    }

    fn heads(db: &Database, rule: &str) -> Vec<String> {
        let rule = Rule::parse(rule).unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        plan.for_each_head(db, None, &[], &mut scratch, |h| {
            out.push(h.to_string());
            true
        });
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn join_matches() {
        let db = db("e(1, 2). e(2, 3). e(3, 4).");
        assert_eq!(heads(&db, "p(X, Z) :- e(X, Y), e(Y, Z)."), vec!["p(1, 3)", "p(2, 4)"]);
    }

    #[test]
    fn tie_break_is_body_order() {
        // All three literals tie at every pick (no constants; after the
        // first pick both remaining literals share exactly one bound var):
        // the deterministic tie-break must follow body order.
        let rule = Rule::parse("p(X, Y, Z) :- a(X, Y), b(Y, Z), c(Z, X).").unwrap();
        assert_eq!(greedy_order(&rule, None), vec![0, 1, 2]);
        // Same rule with the delta on the last literal: c first, then ties
        // among a and b (one bound var each) resolve to a (smaller index).
        assert_eq!(greedy_order(&rule, Some(2)), vec![2, 0, 1]);
    }

    #[test]
    fn greedy_order_prefers_bound_literals() {
        // After the delta binds X, the literal sharing X must come before
        // the disconnected one regardless of body position.
        let rule = Rule::parse("p(X, Z) :- u(W), e(X, Y), f(Y, Z).").unwrap();
        assert_eq!(greedy_order(&rule, Some(1)), vec![1, 2, 0]);
    }

    #[test]
    fn slots_are_dense_and_in_binding_order() {
        let rule = Rule::parse("p(X, Z) :- e(X, Y), f(Y, Z).").unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        assert_eq!(plan.num_slots(), 3); // X, Y, Z
        let names: Vec<&str> = plan.slot_vars.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["X", "Y", "Z"]);
    }

    #[test]
    fn negative_check_placed_before_join_completes() {
        // !a(X) depends only on X, bound by the first scan: the check must
        // appear before the second scan.
        let rule = Rule::parse("p(X, Z) :- e(X, Y), f(Y, Z), !a(X).").unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        let kinds: Vec<&str> = plan
            .ops
            .iter()
            .map(|op| match op {
                Op::Scan(_) => "scan",
                Op::NegCheck(_) => "neg",
            })
            .collect();
        assert_eq!(kinds, vec!["scan", "neg", "scan"]);
    }

    #[test]
    fn ground_negative_check_runs_first() {
        let rule = Rule::parse("p(X) :- e(X), !stop.").unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        assert!(matches!(plan.ops[0], Op::NegCheck(_)));
        let dbase = db("e(1). stop.");
        let mut out = Vec::new();
        plan.for_each_head(&dbase, None, &[], &mut MatchScratch::new(), |h| {
            out.push(h);
            true
        });
        assert!(out.is_empty());
    }

    #[test]
    fn neg_body_reported_in_body_order() {
        let rule = Rule::parse("p(X, Z) :- e(X, Y), f(Y, Z), !a(Z), !b(X).").unwrap();
        // !b(X) becomes bound before !a(Z); reporting must stay body order.
        let plan = CompiledPlan::compile(&rule, None);
        let dbase = db("e(1, 2). f(2, 3).");
        let mut seen = Vec::new();
        plan.for_each_derivation(&dbase, None, &[], &mut MatchScratch::new(), |h, pos, neg| {
            seen.push((
                h.to_string(),
                pos.iter().map(ToString::to_string).collect::<Vec<_>>(),
                neg.iter().map(ToString::to_string).collect::<Vec<_>>(),
            ));
            true
        });
        assert_eq!(seen.len(), 1);
        let (h, pos, neg) = &seen[0];
        assert_eq!(h, "p(1, 3)");
        assert_eq!(pos, &vec!["e(1, 2)".to_string(), "f(2, 3)".to_string()]);
        assert_eq!(neg, &vec!["a(3)".to_string(), "b(1)".to_string()]);
    }

    #[test]
    fn delta_on_negative_literal_scans_and_checks() {
        let rule = Rule::parse("r(X) :- s(X), !a(X).").unwrap();
        let plan = CompiledPlan::compile(&rule, Some(1));
        let dbase = db("s(1). s(2).");
        let mut removed = Relation::new(1);
        removed.insert(vec![Value::int(1)].into());
        let mut out = Vec::new();
        plan.for_each_head(&dbase, Some(&removed), &[], &mut MatchScratch::new(), |h| {
            out.push(h.to_string());
            true
        });
        assert_eq!(out, vec!["r(1)"]);
        // Present again in db: the absence check still fires.
        let dbase2 = db("s(1). a(1).");
        let mut out2 = Vec::new();
        plan.for_each_head(&dbase2, Some(&removed), &[], &mut MatchScratch::new(), |h| {
            out2.push(h.to_string());
            true
        });
        assert!(out2.is_empty());
    }

    #[test]
    fn seed_restricts_and_unknown_seed_is_inert() {
        let rule = Rule::parse("p(X, Y) :- e(X, Y).").unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        let dbase = db("e(1, 2). e(2, 3).");
        let mut out = Vec::new();
        plan.for_each_head(
            &dbase,
            None,
            &[(Symbol::new("X"), Value::int(2)), (Symbol::new("ZZ"), Value::int(9))],
            &mut MatchScratch::new(),
            |h| {
                out.push(h.to_string());
                true
            },
        );
        assert_eq!(out, vec!["p(2, 3)"]);
    }

    #[test]
    fn scratch_reuse_across_invocations() {
        let rule = Rule::parse("p(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        let dbase = db("e(1, 2). e(2, 3). e(3, 4).");
        let mut scratch = MatchScratch::new();
        for _ in 0..3 {
            let mut n = 0;
            plan.for_each_head(&dbase, None, &[], &mut scratch, |_| {
                n += 1;
                true
            });
            assert_eq!(n, 2);
        }
    }

    #[test]
    fn zero_arity_scan() {
        let rule = Rule::parse("q(X) :- go, e(X).").unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        let with = db("go. e(1).");
        let without = db("e(1).");
        let mut scratch = MatchScratch::new();
        let mut n = 0;
        plan.for_each_head(&with, None, &[], &mut scratch, |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
        n = 0;
        plan.for_each_head(&without, None, &[], &mut scratch, |_| {
            n += 1;
            true
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn repeated_variable_within_literal() {
        let dbase = db("e(1, 1). e(1, 2).");
        assert_eq!(heads(&dbase, "p(X) :- e(X, X)."), vec!["p(1)"]);
    }

    #[test]
    fn early_stop_propagates() {
        let rule = Rule::parse("p(X) :- e(X).").unwrap();
        let plan = CompiledPlan::compile(&rule, None);
        let dbase = db("e(1). e(2). e(3).");
        let mut n = 0;
        plan.for_each_head(&dbase, None, &[], &mut MatchScratch::new(), |_| {
            n += 1;
            false
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn compiled_rule_exposes_all_plans() {
        let rule = Rule::parse("p(X) :- e(X), !a(X).").unwrap();
        let cr = CompiledRule::compile(RuleId(7), rule);
        assert_eq!(cr.id(), RuleId(7));
        assert_eq!(cr.plan().delta_idx(), None);
        assert_eq!(cr.delta_plan(0).delta_idx(), Some(0));
        assert_eq!(cr.delta_plan(1).delta_idx(), Some(1));
    }
}
