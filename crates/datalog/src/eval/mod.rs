//! Bottom-up evaluation.
//!
//! Three saturation engines share one [`matcher`]:
//!
//! * [`naive`] — repeated full rule application until fixpoint, reporting
//!   **every derivation** (ground rule instance) to a [`DerivationSink`].
//!   The dynamic maintenance strategies (§4.2, §4.3 of the paper) need each
//!   derivation individually to build per-fact supports, which is exactly
//!   why the paper observes they cannot use the delta-driven mechanism.
//! * [`seminaive`] — the delta-driven mechanism of the paper's §5.2
//!   (Rohmer et al.): fire *helpful* rules on relation increases until no
//!   increase is registered. Only *new* facts are reported, with the rule
//!   that produced them (the one-level supports of §5.1).
//! * [`incremental`] — a DRed-style stratum saturation used by the cascade
//!   engine: re-derivation of removed facts plus delta firing on both added
//!   tuples (positive positions) and removed tuples (negative positions).
//!
//! [`par`] layers per-stratum **parallel** counterparts over [`seminaive`]
//! and [`incremental`]: each round's delta is sharded across scoped worker
//! threads and the per-shard outputs merged deterministically, producing
//! results bit-identical to the sequential modules at any thread count.
//!
//! [`backchain`] is the odd one out: a *top-down* membership test (negation
//! as failure + loop checking) over the grounded program — the paper's §2
//! Theorem vi interpreter, i.e. the implicit-representation query path.

pub mod backchain;
pub mod incremental;
pub mod matcher;
pub mod naive;
pub mod par;
pub mod plan;
pub mod seminaive;

use crate::atom::Fact;
use crate::program::RuleId;

/// A ground instance of a rule discovered during saturation.
#[derive(Debug)]
pub struct Derivation<'a> {
    /// The rule that fired.
    pub rule: RuleId,
    /// The instantiated head.
    pub head: &'a Fact,
    /// Ground facts matched by the positive body literals, in body order.
    pub pos_body: &'a [Fact],
    /// Ground atoms checked absent by the negative body literals.
    pub neg_body: &'a [Fact],
}

/// Receives every derivation found during naive saturation.
pub trait DerivationSink {
    /// Called once per derivation (including re-derivations of facts already
    /// present). Returns `true` if the sink's state changed — this forces
    /// another saturation pass so that refined supports propagate.
    fn on_derivation(&mut self, d: &Derivation<'_>) -> bool;
}

/// A sink that ignores derivations.
pub struct NullSink;

impl DerivationSink for NullSink {
    fn on_derivation(&mut self, _: &Derivation<'_>) -> bool {
        false
    }
}

/// Receives each **new** fact during delta-driven saturation, along with the
/// rule that produced it (the paper's §5.1 rule-pointer supports).
pub trait NewFactSink {
    /// Called when `fact` enters the database, fired by `rule`.
    fn on_new_fact(&mut self, rule: RuleId, fact: &Fact);

    /// Called when a firing (re-)derives a fact already present. The cascade
    /// engine uses this to *enrich* rule-pointer supports — "each time during
    /// the closure process a new derivation of a fact has been found, a
    /// pointer to the last rule applied is added to the set" (paper §5.1).
    fn on_existing_fact(&mut self, _rule: RuleId, _fact: &Fact) {}
}

/// A sink that ignores new facts.
pub struct NullNewFact;

impl NewFactSink for NullNewFact {
    fn on_new_fact(&mut self, _: RuleId, _: &Fact) {}
}
