//! A backchaining membership test for `M(P)` (paper §2, Theorem vi).
//!
//! "There is a backchaining interpreter for P using the negation as failure
//! rule and loop checking (but working only with fully instantiated clauses)
//! which tests for membership in M(P) when P is function-free."
//!
//! The interpreter works top-down on the grounded program: a goal holds if
//! it is asserted or some ground rule instance for it has all positive
//! hypotheses provable and no negative hypothesis provable. Loop checking
//! cuts a branch when a goal re-occurs among its own ancestors — sound for
//! the least-model reading, where facts supported only through cycles are
//! false. Negative subgoals restart with a fresh ancestor stack: for a
//! stratified program they live in a strictly lower stratum, so the
//! recursion terminates.
//!
//! **Memoization.** Proved goals are always cached. A *failure* is cached
//! only when it is definitive: if the search was pruned by a loop-check cut
//! that referenced an ancestor *above* the goal's own frame, the failure is
//! contextual (that ancestor may be provable another way, reviving this
//! goal), so the result is not cached. Cuts at or below the goal's own
//! frame are genuine cycles — unfounded support — and do not block caching.
//! This keeps acyclic recursion (trees, DAGs) polynomial and confines
//! re-exploration to strongly connected goal groups.
//!
//! This is the paper's *implicit representation* query path, the
//! alternative the maintenance engines' explicit representation is traded
//! against (§3 and experiment E12).

use rustc_hash::{FxHashMap, FxHashSet};

use crate::atom::Fact;
use crate::ground::{ground_program, GroundRule, GroundingBudgetExceeded};
use crate::program::Program;

/// "No cut reached an ancestor": the failure is definitive.
const NO_CUT: usize = usize::MAX;

/// A memoizing backchaining interpreter over a grounded program.
pub struct Backchainer {
    rules: Vec<GroundRule>,
    by_head: FxHashMap<Fact, Vec<u32>>,
    asserted: FxHashSet<Fact>,
    memo: FxHashMap<Fact, bool>,
}

impl Backchainer {
    /// Grounds `program` (within `budget` rule instances) and prepares the
    /// interpreter.
    pub fn new(program: &Program, budget: usize) -> Result<Backchainer, GroundingBudgetExceeded> {
        let mut rules = ground_program(program, budget)?;
        // Cheapest-first literal selection: positive subgoals whose relation
        // has no rules are decided by an O(1) assertion lookup — check them
        // before recursing into rule-defined subgoals. Ground conjunctions
        // are order-independent semantically; the order only prunes the
        // proof search (a recursion instance `p(x,z) ← p(x,y) ∧ e(y,z)`
        // with a false `e` fact must die before exploring `p`).
        let rule_heads: FxHashSet<crate::symbol::Symbol> =
            program.rules().map(|(_, r)| r.head.rel).collect();
        for r in &mut rules {
            r.pos.sort_by_key(|f| rule_heads.contains(&f.rel));
        }
        let mut by_head: FxHashMap<Fact, Vec<u32>> = FxHashMap::default();
        for (i, r) in rules.iter().enumerate() {
            by_head.entry(r.head.clone()).or_default().push(i as u32);
        }
        Ok(Backchainer {
            rules,
            by_head,
            asserted: program.facts().cloned().collect(),
            memo: FxHashMap::default(),
        })
    }

    /// Tests membership of a ground goal in `M(P)`.
    pub fn holds(&mut self, goal: &Fact) -> bool {
        let mut stack = Vec::new();
        self.prove(goal, &mut stack).0
    }

    /// Number of memoized results (for tests).
    #[cfg(test)]
    fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Returns `(holds, oldest_cut)`: `oldest_cut` is the smallest stack
    /// index of an ancestor referenced by a loop-check cut during this
    /// search, or [`NO_CUT`].
    fn prove(&mut self, goal: &Fact, stack: &mut Vec<Fact>) -> (bool, usize) {
        if let Some(&b) = self.memo.get(goal) {
            return (b, NO_CUT);
        }
        if self.asserted.contains(goal) {
            self.memo.insert(goal.clone(), true);
            return (true, NO_CUT);
        }
        if let Some(pos) = stack.iter().position(|g| g == goal) {
            return (false, pos); // loop check: cyclic support is no support
        }
        let Some(rule_ids) = self.by_head.get(goal).cloned() else {
            self.memo.insert(goal.clone(), false);
            return (false, NO_CUT);
        };
        let my_frame = stack.len();
        stack.push(goal.clone());
        let mut proved = false;
        let mut oldest_cut = NO_CUT;
        'rules: for id in rule_ids {
            let rule = self.rules[id as usize].clone();
            for sub in &rule.pos {
                let (holds, cut) = self.prove(sub, stack);
                if !holds {
                    oldest_cut = oldest_cut.min(cut);
                    continue 'rules;
                }
            }
            for sub in &rule.neg {
                // Negation as failure, evaluated in a fresh context (for a
                // stratified program the subgoal is in a lower stratum).
                let mut fresh = Vec::new();
                if self.prove(sub, &mut fresh).0 {
                    continue 'rules;
                }
            }
            proved = true;
            break;
        }
        stack.pop();
        if proved {
            self.memo.insert(goal.clone(), true);
            (true, NO_CUT)
        } else if oldest_cut >= my_frame {
            // Every cut pointed at this goal or its descendants: a genuine
            // unfounded cycle, not a context artifact.
            self.memo.insert(goal.clone(), false);
            (false, NO_CUT)
        } else {
            (false, oldest_cut)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StandardModel;

    fn chainer(src: &str) -> Backchainer {
        Backchainer::new(&Program::parse(src).unwrap(), 100_000).unwrap()
    }

    fn agrees_with_model(src: &str) {
        let program = Program::parse(src).unwrap();
        let model = StandardModel::compute(&program).unwrap();
        let mut bc = Backchainer::new(&program, 100_000).unwrap();
        // Every model fact must be provable.
        for f in model.db().iter_facts() {
            assert!(bc.holds(&f), "{f} is in M(P) but not provable");
        }
        // Check non-membership over the grounded heads.
        let heads: FxHashSet<Fact> = bc.rules.iter().map(|r| r.head.clone()).collect();
        let mut bc2 = Backchainer::new(&program, 100_000).unwrap();
        for h in heads {
            assert_eq!(
                bc2.holds(&h),
                model.db().contains(&h),
                "backchainer disagrees with M(P) on {h}"
            );
        }
    }

    #[test]
    fn asserted_facts_hold() {
        let mut bc = chainer("a(1). b(2).");
        assert!(bc.holds(&Fact::parse("a(1)").unwrap()));
        assert!(!bc.holds(&Fact::parse("a(2)").unwrap()));
    }

    #[test]
    fn pods_example_membership() {
        let mut bc = chainer(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        assert!(bc.holds(&Fact::parse("rejected(1)").unwrap()));
        assert!(!bc.holds(&Fact::parse("rejected(2)").unwrap()));
    }

    #[test]
    fn negation_chain_alternates() {
        let mut bc = chainer("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        assert!(!bc.holds(&Fact::parse("p0").unwrap()));
        assert!(bc.holds(&Fact::parse("p1").unwrap()));
        assert!(!bc.holds(&Fact::parse("p2").unwrap()));
        assert!(bc.holds(&Fact::parse("p3").unwrap()));
    }

    #[test]
    fn positive_cycle_is_unfounded() {
        // a and b support only each other: both false; c seeds d.
        let mut bc = chainer("a :- b. b :- a. c. d :- c.");
        assert!(!bc.holds(&Fact::parse("a").unwrap()));
        assert!(!bc.holds(&Fact::parse("b").unwrap()));
        assert!(bc.holds(&Fact::parse("d").unwrap()));
    }

    #[test]
    fn cycle_with_external_support_holds() {
        // The cut of the a→g→a branch must not condemn g: a :- c succeeds,
        // and g :- a then holds.
        let mut bc = chainer("a :- g. g :- a. a :- c. c.");
        assert!(bc.holds(&Fact::parse("a").unwrap()));
        assert!(bc.holds(&Fact::parse("g").unwrap()));
    }

    #[test]
    fn contextual_failure_is_not_cached() {
        // Proving a first explores g (fails contextually — its only support
        // is the ancestor a), then succeeds via c. g must not be stuck
        // false: queried afterwards, it holds via a.
        let mut bc = chainer("a :- g. g :- a. a :- c. c.");
        assert!(bc.holds(&Fact::parse("a").unwrap()));
        assert!(bc.holds(&Fact::parse("g").unwrap()));
        // And in the other exploration order.
        let mut bc2 = chainer("a :- g. g :- a. a :- c. c.");
        assert!(bc2.holds(&Fact::parse("g").unwrap()));
        assert!(bc2.holds(&Fact::parse("a").unwrap()));
    }

    #[test]
    fn genuine_cycle_failure_is_cached() {
        let mut bc = chainer("a :- b. b :- a. seeded :- a.");
        assert!(!bc.holds(&Fact::parse("a").unwrap()));
        // a is the root of the failing cycle: cached definitively. (b's
        // failure inside a's search was contextual and is re-derived — and
        // then cached — on its own query.)
        let cached = bc.memo_len();
        assert!(cached >= 1);
        assert!(!bc.holds(&Fact::parse("b").unwrap()));
        let after_b = bc.memo_len();
        assert!(!bc.holds(&Fact::parse("b").unwrap()));
        assert_eq!(bc.memo_len(), after_b, "b cached after its own query");
    }

    #[test]
    fn transitive_closure_membership() {
        agrees_with_model(
            "e(1, 2). e(2, 3). e(3, 4).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
        );
    }

    #[test]
    fn cyclic_graph_membership() {
        agrees_with_model(
            "e(1, 2). e(2, 3). e(3, 1). e(3, 4). n(1). n(2). n(4). n(5).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).
             iso(X) :- n(X), !covered(X). covered(X) :- p(X, Y).",
        );
    }

    #[test]
    fn agrees_on_mixed_program() {
        agrees_with_model(
            "e(1). e(2). c(1).
             b(X) :- e(X), !c(X).
             a(X) :- e(X), !b(X).
             d(X) :- a(X), e(X).",
        );
    }

    #[test]
    fn agrees_on_cascade_demo() {
        agrees_with_model("r :- p. q :- r. q :- !p.");
    }

    #[test]
    fn budget_error_propagates() {
        let p = Program::parse("e(1). e(2). e(3). r(X, Y, Z) :- e(X), e(Y), e(Z).").unwrap();
        assert!(Backchainer::new(&p, 5).is_err());
    }

    #[test]
    fn memo_makes_repeat_queries_cheap() {
        let mut bc = chainer(
            "e(1, 2). e(2, 3). e(3, 1).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
        );
        let goal = Fact::parse("p(1, 1)").unwrap();
        assert!(bc.holds(&goal));
        let memo_size = bc.memo_len();
        assert!(bc.holds(&goal));
        assert_eq!(bc.memo_len(), memo_size, "second query must hit the memo");
    }

    #[test]
    fn larger_cyclic_graph_terminates_quickly() {
        // A ring of 12 nodes plus chords: exponential without definitive-
        // failure caching, comfortable with it.
        let mut src = String::new();
        for i in 0..12 {
            src.push_str(&format!("e({}, {}). ", i, (i + 1) % 12));
            src.push_str(&format!("n({i}). "));
        }
        src.push_str("e(0, 6). e(3, 9). ");
        src.push_str(
            "p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).
             unreachable(X, Y) :- n(X), n(Y), !p(X, Y).",
        );
        let program = Program::parse(&src).unwrap();
        let model = StandardModel::compute(&program).unwrap();
        let mut bc = Backchainer::new(&program, 1_000_000).unwrap();
        for i in 0..12 {
            for j in 0..12 {
                let q = Fact::parse(&format!("unreachable({i}, {j})")).unwrap();
                assert_eq!(bc.holds(&q), model.db().contains(&q), "at ({i},{j})");
            }
        }
    }
}
