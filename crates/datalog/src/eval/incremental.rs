//! Incremental stratum saturation for the cascade engine (paper §5.1).
//!
//! After the removal phase of a stratum, three kinds of work remain:
//!
//! 1. **Re-derivation** (DRed-style): each fact removed from this stratum may
//!    still have a valid alternative derivation; we query for one directly.
//! 2. **Negative-delta firing**: tuples *removed* from lower strata can newly
//!    satisfy negative hypotheses, enabling derivations that never existed.
//! 3. **Positive-delta firing**: tuples *added* to lower strata (and facts
//!    added by 1–2) drive ordinary semi-naive rounds.
//!
//! Together these compute `SAT(P_i, M)` for the stratum without a full
//! re-join over unchanged relations.

use rustc_hash::FxHashMap;

use crate::atom::Fact;
use crate::program::RuleId;
use crate::rule::Rule;
use crate::storage::{Database, Relation};
use crate::symbol::Symbol;
use crate::term::{Term, Value};

use super::plan::{CompiledRule, MatchScratch};
use super::seminaive::{self, DeltaStats};
use super::NewFactSink;

/// Changes accumulated while cascading through the strata.
#[derive(Clone, Debug, Default)]
pub struct DeltaSet {
    /// Facts added, grouped by relation.
    pub added: FxHashMap<Symbol, Vec<Fact>>,
    /// Facts removed, grouped by relation.
    pub removed: FxHashMap<Symbol, Vec<Fact>>,
}

impl DeltaSet {
    /// Records an addition.
    pub fn add(&mut self, fact: Fact) {
        self.added.entry(fact.rel).or_default().push(fact);
    }

    /// Records a removal.
    pub fn remove(&mut self, fact: Fact) {
        self.removed.entry(fact.rel).or_default().push(fact);
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Relations that increased.
    pub fn increased_rels(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.added.keys().copied()
    }

    /// Relations that decreased.
    pub fn decreased_rels(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.removed.keys().copied()
    }
}

/// Tries to re-derive `fact` from `db` using any rule of `rules` whose head
/// unifies with it. Returns the id of a deriving rule, or `None`.
///
/// This is the rederivation step of DRed: a removed fact with an alternative
/// derivation must come back.
pub fn rederive(db: &Database, rules: &[CompiledRule], fact: &Fact) -> Option<RuleId> {
    rederive_with(db, rules, fact, &mut MatchScratch::new())
}

/// [`rederive`] with caller-owned scratch buffers (the hot path inside
/// [`stratum_saturate`]).
pub fn rederive_with(
    db: &Database,
    rules: &[CompiledRule],
    fact: &Fact,
    scratch: &mut MatchScratch,
) -> Option<RuleId> {
    for cr in rules {
        let rule = cr.rule();
        if rule.head.rel != fact.rel {
            continue;
        }
        let Some(seed) = head_seed(rule, fact) else { continue };
        let mut found = false;
        cr.plan().for_each_head(db, None, &seed, scratch, |head| {
            debug_assert_eq!(&head, fact);
            found = true;
            false // stop at the first witness
        });
        if found {
            return Some(cr.id());
        }
    }
    None
}

/// Unifies a rule head with a ground fact, producing seed bindings.
/// `None` if the head cannot produce this fact (constant clash or repeated
/// variable with differing values).
fn head_seed(rule: &Rule, fact: &Fact) -> Option<Vec<(Symbol, Value)>> {
    if rule.head.arity() != fact.arity() {
        return None;
    }
    let mut seed: Vec<(Symbol, Value)> = Vec::with_capacity(fact.arity());
    for (term, &val) in rule.head.terms.iter().zip(fact.args.iter()) {
        match term {
            Term::Const(c) => {
                if *c != val {
                    return None;
                }
            }
            Term::Var(v) => match seed.iter().find(|(s, _)| s == v) {
                Some(&(_, prev)) => {
                    if prev != val {
                        return None;
                    }
                }
                None => seed.push((*v, val)),
            },
        }
    }
    Some(seed)
}

/// Incremental `SAT(P_i, M)` for one stratum.
///
/// * `pos_delta` — facts recently added (already present in `db`),
/// * `neg_delta` — facts recently removed (already absent from `db`),
/// * `rederive_candidates` — facts of this stratum removed by the removal
///   phase, to be restored if they still have a derivation,
/// * `sink` — receives each (re)added fact with its deriving rule.
///
/// Returns the facts added to `db` (including re-derived ones).
pub fn stratum_saturate<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    pos_delta: &[Fact],
    neg_delta: &[Fact],
    rederive_candidates: &[Fact],
    sink: &mut S,
    stats: &mut DeltaStats,
) -> Vec<Fact> {
    let mut scratch = MatchScratch::new();
    let mut added: Vec<Fact> = Vec::new();
    let mut frontier: Vec<Fact> = pos_delta.to_vec();

    // 1. Re-derivation of this stratum's removed facts.
    for fact in rederive_candidates {
        if db.contains(fact) {
            continue;
        }
        if let Some(rid) = rederive_with(db, rules, fact, &mut scratch) {
            db.insert(fact.clone());
            sink.on_new_fact(rid, fact);
            frontier.push(fact.clone());
            added.push(fact.clone());
        }
    }

    // 2. Negative-delta firing: removed lower-stratum tuples newly satisfy
    //    negative hypotheses.
    if !neg_delta.is_empty() {
        let removed_by_rel: FxHashMap<Symbol, Relation> = group(neg_delta);
        for cr in rules {
            let rid = cr.id();
            for (li, lit) in cr.rule().body.iter().enumerate() {
                if lit.positive {
                    continue;
                }
                let Some(drel) = removed_by_rel.get(&lit.atom.rel) else { continue };
                stats.firings += 1;
                let mut out: Vec<Fact> = Vec::new();
                cr.delta_plan(li).for_each_head(db, Some(drel), &[], &mut scratch, |head| {
                    if db.contains(&head) {
                        sink.on_existing_fact(rid, &head);
                    } else {
                        out.push(head);
                    }
                    true
                });
                for f in out {
                    if db.insert(f.clone()) {
                        sink.on_new_fact(rid, &f);
                        frontier.push(f.clone());
                        added.push(f);
                    }
                }
            }
        }
    }

    // 3. Ordinary semi-naive rounds over the positive frontier.
    seminaive::drive(db, rules, frontier, sink, stats, &mut added);
    // `drive` extends `added` with everything it inserts, but the frontier
    // fed to it contained `pos_delta` facts already present in `db`, which it
    // will not re-add; nothing further to reconcile.
    added
}

fn group(facts: &[Fact]) -> FxHashMap<Symbol, Relation> {
    let mut by_rel: FxHashMap<Symbol, Relation> = FxHashMap::default();
    for f in facts {
        by_rel.entry(f.rel).or_insert_with(|| Relation::new(f.arity())).insert(f.args.clone());
    }
    by_rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NullNewFact;
    use crate::program::Program;
    use crate::storage::parse_facts;

    fn setup(src: &str) -> (Database, Vec<CompiledRule>) {
        let p = Program::parse(src).unwrap();
        let db = Database::from_facts(p.facts().cloned());
        let rules = crate::eval::plan::compile_rules(p.rules().map(|(id, r)| (id, r.clone())));
        (db, rules)
    }

    #[test]
    fn rederive_finds_alternative_derivation() {
        let (mut db, rules) = setup("a(1). b(1). p(X) :- a(X). p(X) :- b(X).");
        db.insert(Fact::parse("p(1)").unwrap());
        // Suppose p(1) was removed because its a-derivation failed:
        db.remove(&Fact::parse("p(1)").unwrap());
        db.remove(&Fact::parse("a(1)").unwrap());
        let rid = rederive(&db, &rules, &Fact::parse("p(1)").unwrap());
        assert_eq!(rid, Some(rules[1].id()), "should re-derive via the b-rule");
    }

    #[test]
    fn rederive_fails_when_no_derivation() {
        let (mut db, rules) = setup("a(1). p(X) :- a(X).");
        db.remove(&Fact::parse("a(1)").unwrap());
        assert_eq!(rederive(&db, &rules, &Fact::parse("p(1)").unwrap()), None);
    }

    #[test]
    fn head_seed_handles_constants_and_repeats() {
        let rule = Rule::parse("p(X, a, X) :- q(X).").unwrap();
        assert!(head_seed(&rule, &Fact::parse("p(1, a, 1)").unwrap()).is_some());
        assert!(head_seed(&rule, &Fact::parse("p(1, b, 1)").unwrap()).is_none());
        assert!(head_seed(&rule, &Fact::parse("p(1, a, 2)").unwrap()).is_none());
        assert!(head_seed(&rule, &Fact::parse("p(1, a)").unwrap()).is_none());
    }

    #[test]
    fn negative_delta_enables_new_facts() {
        // Stratum rules: r(X) :- s(X), !a(X). Lower stratum removed a(1).
        let (mut db, rules) = setup("s(1). s(2). r(X) :- s(X), !a(X).");
        // Current state: a(1) was just removed (never in db here), r empty;
        // r(2) would already exist in a consistent model, so add it:
        db.insert(Fact::parse("r(2)").unwrap());
        let removed = vec![Fact::parse("a(1)").unwrap()];
        let added = stratum_saturate(
            &mut db,
            &rules,
            &[],
            &removed,
            &[],
            &mut NullNewFact,
            &mut DeltaStats::default(),
        );
        assert_eq!(added, vec![Fact::parse("r(1)").unwrap()]);
        assert!(db.contains_parsed("r(1)"));
    }

    #[test]
    fn positive_delta_drives_recursion() {
        let (mut db, rules) = setup("p(X, Z) :- p(X, Y), e(Y, Z). e(2, 3). e(3, 4).");
        db.insert(Fact::parse("p(1, 2)").unwrap());
        let pos = vec![Fact::parse("p(1, 2)").unwrap()];
        let added = stratum_saturate(
            &mut db,
            &rules,
            &pos,
            &[],
            &[],
            &mut NullNewFact,
            &mut DeltaStats::default(),
        );
        assert_eq!(added.len(), 2);
        assert!(db.contains_parsed("p(1, 4)"));
    }

    #[test]
    fn rederived_facts_feed_the_frontier() {
        // q(1) was removed; its rederivation should re-derive s(1) too.
        let (mut db, rules) = setup("b(1). q(X) :- b(X). s(X) :- q(X).");
        // Model had q(1), s(1); removal phase dropped both.
        let candidates = vec![Fact::parse("q(1)").unwrap(), Fact::parse("s(1)").unwrap()];
        let added = stratum_saturate(
            &mut db,
            &rules,
            &[],
            &[],
            &candidates,
            &mut NullNewFact,
            &mut DeltaStats::default(),
        );
        assert_eq!(added.len(), 2);
        assert!(db.contains_parsed("q(1)") && db.contains_parsed("s(1)"));
    }

    #[test]
    fn unrederivable_candidates_stay_out() {
        let (mut db, rules) = setup("q(X) :- b(X). s(X) :- q(X).");
        let candidates = vec![Fact::parse("q(1)").unwrap(), Fact::parse("s(1)").unwrap()];
        let added = stratum_saturate(
            &mut db,
            &rules,
            &[],
            &[],
            &candidates,
            &mut NullNewFact,
            &mut DeltaStats::default(),
        );
        assert!(added.is_empty());
        assert_eq!(db, Database::from_facts(parse_facts("")));
    }

    #[test]
    fn delta_set_accumulates() {
        let mut d = DeltaSet::default();
        assert!(d.is_empty());
        d.add(Fact::parse("p(1)").unwrap());
        d.remove(Fact::parse("q(2)").unwrap());
        assert!(!d.is_empty());
        assert_eq!(d.increased_rels().count(), 1);
        assert_eq!(d.decreased_rels().count(), 1);
    }
}
