//! Naive (tuple-at-a-time) saturation reporting every derivation.
//!
//! Used by the dynamic maintenance strategies (§4.2/§4.3): they attach
//! supports built from the supports of the *individual* body facts of each
//! derivation, so "each newly derived fact has to be handled individually.
//! Thus the delta driven mechanism which produces new facts in chunks cannot
//! be applied here" (paper, §5.2).

use crate::atom::Fact;
use crate::storage::Database;

use super::plan::{CompiledRule, MatchScratch};
use super::{Derivation, DerivationSink};

/// Statistics from one saturation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Number of derivations (ground rule instances) enumerated.
    pub derivations: u64,
    /// Number of full passes over the rule set.
    pub passes: u64,
}

/// Closes `db` under `rules`, invoking `sink` on every derivation found.
///
/// Iterates full passes until a pass adds no facts **and** the sink reports
/// no state change (support refinement forces extra passes so that smaller
/// supports propagate to facts derived from the refined ones).
///
/// Returns the facts added, in insertion order.
pub fn saturate<S: DerivationSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    sink: &mut S,
    stats: &mut SaturationStats,
) -> Vec<Fact> {
    let mut scratch = MatchScratch::new();
    let mut added_total = Vec::new();
    loop {
        stats.passes += 1;
        let mut changed = false;
        for cr in rules {
            let rid = cr.id();
            let mut new_facts: Vec<Fact> = Vec::new();
            let derivations = &mut stats.derivations;
            cr.plan().for_each_derivation(db, None, &[], &mut scratch, |head, pos, neg| {
                *derivations += 1;
                let d = Derivation { rule: rid, head: &head, pos_body: pos, neg_body: neg };
                if sink.on_derivation(&d) {
                    changed = true;
                }
                if !db.contains(&head) {
                    new_facts.push(head);
                }
                true
            });
            for f in new_facts {
                if db.insert(f.clone()) {
                    changed = true;
                    added_total.push(f);
                }
            }
        }
        if !changed {
            break;
        }
    }
    added_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NullSink;
    use crate::program::Program;
    use crate::storage::parse_facts;

    fn setup(src: &str) -> (Database, Vec<CompiledRule>) {
        let p = Program::parse(src).unwrap();
        let db = Database::from_facts(p.facts().cloned());
        let rules = crate::eval::plan::compile_rules(p.rules().map(|(id, r)| (id, r.clone())));
        (db, rules)
    }

    #[test]
    fn transitive_closure() {
        let (mut db, rules) = setup(
            "e(1, 2). e(2, 3). e(3, 4).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
        );
        let mut stats = SaturationStats::default();
        saturate(&mut db, &rules, &mut NullSink, &mut stats);
        let expected = parse_facts(
            "e(1,2). e(2,3). e(3,4).
             p(1,2). p(2,3). p(3,4). p(1,3). p(2,4). p(1,4).",
        );
        assert_eq!(db, Database::from_facts(expected));
        assert!(stats.passes >= 3);
    }

    #[test]
    fn negation_on_fixed_lower_relations() {
        let (mut db, rules) = setup("s(1). s(2). a(1). r(X) :- s(X), !a(X).");
        saturate(&mut db, &rules, &mut NullSink, &mut SaturationStats::default());
        assert!(db.contains_parsed("r(2)"));
        assert!(!db.contains_parsed("r(1)"));
    }

    #[test]
    fn returns_added_facts_only() {
        let (mut db, rules) = setup("e(1, 2). p(X, Y) :- e(X, Y).");
        let added = saturate(&mut db, &rules, &mut NullSink, &mut SaturationStats::default());
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].to_string(), "p(1, 2)");
        // Saturating again adds nothing.
        let mut db2 = db.clone();
        let added2 = saturate(&mut db2, &rules, &mut NullSink, &mut SaturationStats::default());
        assert!(added2.is_empty());
        assert_eq!(db, db2);
    }

    #[test]
    fn sink_sees_rederivations() {
        struct Counter(u64);
        impl DerivationSink for Counter {
            fn on_derivation(&mut self, _: &Derivation<'_>) -> bool {
                self.0 += 1;
                false
            }
        }
        let (mut db, rules) = setup("a(1). p(X) :- a(X). p(X) :- a(X).");
        let mut c = Counter(0);
        saturate(&mut db, &rules, &mut c, &mut SaturationStats::default());
        // Two rules each derive p(1); at least one extra pass re-enumerates.
        assert!(c.0 >= 2, "expected at least 2 derivations, got {}", c.0);
    }

    #[test]
    fn sink_change_forces_extra_pass() {
        struct OneShot(bool);
        impl DerivationSink for OneShot {
            fn on_derivation(&mut self, _: &Derivation<'_>) -> bool {
                std::mem::replace(&mut self.0, false)
            }
        }
        let (mut db, rules) = setup("a(1). p(X) :- a(X).");
        let mut stats = SaturationStats::default();
        saturate(&mut db, &rules, &mut OneShot(true), &mut stats);
        assert!(stats.passes >= 2);
    }
}
