//! Per-stratum parallel saturation.
//!
//! Stratified semantics is what makes this safe: within one stratum, rule
//! firings are independent — negative hypotheses only consult *earlier*
//! strata, which are already final — so the per-round delta can be sharded
//! and matched on several workers, and the merged result is the same
//! fixpoint the sequential engine computes (paper §2: the standard model is
//! unique and stratification-independent).
//!
//! The implementation goes further than same-fixpoint: it is **bit-identical
//! to sequential evaluation regardless of thread count**, which lets the
//! equivalence and differential suites gate it with exact comparisons of
//! models, supports, and statistics. Three properties make that hold:
//!
//! 1. **Frozen database per firing.** A firing (one rule × one delta
//!    position) never mutates the database while matching — the sequential
//!    engine already buffers its output (`out`) and inserts afterwards.
//!    Workers therefore read the same `&Database` the sequential enumeration
//!    would, and every `contains` pre-check agrees.
//! 2. **Order-preserving sharding.** The delta relation is split into
//!    *contiguous chunks of its iteration order*. Relation scans — full
//!    iteration and bound-column index scans alike — enumerate tuples in
//!    insertion (arena) order, so concatenating the per-shard outputs in
//!    shard order reproduces the sequential enumeration order exactly.
//! 3. **Sequential structure everywhere else.** Rules fire in the same
//!    order, rounds have the same boundaries, and insertion happens on the
//!    merge thread in enumeration order, so `DeltaStats`, sink callbacks,
//!    and the returned `added` list match the sequential engine's.
//!
//! Workers are `std::thread::scope` threads (no external dependencies —
//! consistent with the offline-shims constraint) pulling shards off an
//! atomic counter; each owns its [`MatchScratch`], so no mutable scratch is
//! ever shared (`MatchScratch` reuse is thread-safe by construction — one
//! scratch per worker, created inside the worker).
//!
//! Firings whose delta is smaller than [`MIN_PARALLEL_TUPLES`] run on the
//! calling thread: spawning workers for a handful of tuples costs more than
//! the join. With [`Parallelism::sequential`] every entry point delegates to
//! the sequential modules unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::atom::Fact;
use crate::storage::{Database, Relation};

use super::incremental;
use super::plan::{CompiledPlan, CompiledRule, MatchScratch};
use super::seminaive::{self, DeltaStats};
use super::NewFactSink;

/// Deltas with fewer tuples than this run on the calling thread: the join
/// work they drive is too small to amortize spawning workers.
pub const MIN_PARALLEL_TUPLES: usize = 64;

/// Shards per worker thread. More shards than workers lets the atomic
/// work-queue rebalance skewed shards (a hot join key makes some chunks far
/// more expensive than others).
const SHARDS_PER_THREAD: usize = 4;

/// Hard cap applied when auto-detecting the thread count: saturation shards
/// one delta relation, and past a small pool the merge and memory traffic
/// dominate.
const MAX_AUTO_THREADS: usize = 8;

/// Hard cap on any requested thread count. Workers are spawned per firing
/// inside `std::thread::scope`, and `Scope::spawn` panics — aborting the
/// process — if the OS refuses a thread; clamping bounds the spawn count no
/// matter what reaches [`Parallelism::new`] (e.g. a REPL `:threads 100000`).
pub const MAX_THREADS: usize = 64;

/// How many worker threads saturation may use.
///
/// `sequential()` (the default) keeps everything on the calling thread and
/// delegates to the sequential evaluation modules; results are identical
/// either way — the knob only trades wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Single-threaded evaluation (the default).
    pub fn sequential() -> Parallelism {
        Parallelism { threads: 1 }
    }

    /// Evaluation on up to `threads` workers (clamped to
    /// `1..=`[`MAX_THREADS`]).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// Reads `STRATA_THREADS` from the environment; an unset or unparseable
    /// value falls back to the detected CPU count, capped at
    /// [`MAX_AUTO_THREADS`].
    pub fn auto() -> Parallelism {
        Self::from_env_value(std::env::var("STRATA_THREADS").ok().as_deref())
    }

    /// The [`auto`](Parallelism::auto) resolution rule, split out so tests
    /// can exercise it without mutating the process environment.
    pub fn from_env_value(value: Option<&str>) -> Parallelism {
        match value.and_then(|s| s.trim().parse::<usize>().ok()) {
            Some(n) => Parallelism::new(n),
            None => {
                let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
                Parallelism::new(cpus.min(MAX_AUTO_THREADS))
            }
        }
    }

    /// The worker count.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Whether more than one worker is in play.
    pub fn is_parallel(self) -> bool {
        self.threads > 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::sequential()
    }
}

/// Splits `rel` into at most `shards` sub-relations of contiguous chunks of
/// its iteration order, so that scanning the shards in order enumerates
/// exactly the tuples of `rel` in exactly its order.
fn shard_relation(rel: &Relation, shards: usize) -> Vec<Relation> {
    let per = rel.len().div_ceil(shards.max(1)).max(1);
    let mut out: Vec<Relation> = Vec::with_capacity(shards);
    let mut cur = Relation::new(rel.arity());
    for t in rel.iter() {
        if cur.len() == per {
            out.push(std::mem::replace(&mut cur, Relation::new(rel.arity())));
        }
        cur.insert(t.into());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Runs `plan` over the delta `shards` on up to `threads` scoped workers and
/// merges the per-shard buffers in shard order, yielding `(head, existed)`
/// pairs — `existed` being `db.contains(head)` under the frozen database —
/// in exactly the order the sequential enumeration over the unsharded delta
/// produces them.
fn fire_sharded(
    plan: &CompiledPlan,
    db: &Database,
    shards: &[Relation],
    threads: usize,
    out: &mut Vec<(Fact, bool)>,
) {
    let slots: Vec<OnceLock<Vec<(Fact, bool)>>> = shards.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(shards.len()) {
            s.spawn(|| {
                // One scratch per worker, created inside the worker: no
                // mutable evaluation state crosses a thread boundary.
                let mut scratch = MatchScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(shard) = shards.get(i) else { break };
                    let mut buf: Vec<(Fact, bool)> = Vec::new();
                    plan.for_each_head(db, Some(shard), &[], &mut scratch, |head| {
                        let existed = db.contains(&head);
                        buf.push((head, existed));
                        true
                    });
                    slots[i].set(buf).unwrap_or_else(|_| panic!("shard {i} emitted twice"));
                }
            });
        }
    });
    for slot in slots {
        out.extend(slot.into_inner().expect("every shard processed by some worker"));
    }
}

/// One delta firing: appends `(head, existed)` pairs to `out` in sequential
/// enumeration order, sharding across workers when the delta is large
/// enough and `par` allows it.
pub fn collect_delta_heads(
    plan: &CompiledPlan,
    db: &Database,
    delta: &Relation,
    par: Parallelism,
    scratch: &mut MatchScratch,
    out: &mut Vec<(Fact, bool)>,
) {
    if par.is_parallel() && delta.len() >= MIN_PARALLEL_TUPLES {
        let shards = shard_relation(delta, par.threads() * SHARDS_PER_THREAD);
        fire_sharded(plan, db, &shards, par.threads(), out);
    } else {
        plan.for_each_head(db, Some(delta), &[], scratch, |head| {
            let existed = db.contains(&head);
            out.push((head, existed));
            true
        });
    }
}

/// Parallel counterpart of [`seminaive::saturate`]: closes `db` under
/// `rules`, delta-driven, sharding each round's large deltas across `par`
/// workers. Model, sink callbacks, statistics, and the returned fact list
/// are identical to the sequential engine's.
pub fn saturate<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    sink: &mut S,
    stats: &mut DeltaStats,
    par: Parallelism,
) -> Vec<Fact> {
    if !par.is_parallel() {
        return seminaive::saturate(db, rules, sink, stats);
    }
    // The initial full round stays on the calling thread: full-enumeration
    // plans have no delta to shard, and each rule must see its
    // predecessors' insertions exactly as the sequential engine does.
    let mut scratch = MatchScratch::new();
    let delta = seminaive::full_round(db, rules, sink, stats, &mut scratch);
    let mut added = delta.clone();
    drive_par(db, rules, delta, sink, stats, &mut added, par, &mut scratch);
    added
}

/// Parallel counterpart of [`seminaive::drive`]: runs delta rounds from an
/// initial increase until all increases are empty.
pub fn drive<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    delta: Vec<Fact>,
    sink: &mut S,
    stats: &mut DeltaStats,
    added: &mut Vec<Fact>,
    par: Parallelism,
) {
    if !par.is_parallel() {
        return seminaive::drive(db, rules, delta, sink, stats, added);
    }
    drive_par(db, rules, delta, sink, stats, added, par, &mut MatchScratch::new());
}

/// The parallel delta-round loop — the same structure as
/// `seminaive::drive_with`, with each sufficiently large firing sharded.
/// Each round's big delta relations are sharded **once** and the shards
/// reused by every rule firing on them.
#[allow(clippy::too_many_arguments)]
fn drive_par<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    mut delta: Vec<Fact>,
    sink: &mut S,
    stats: &mut DeltaStats,
    added: &mut Vec<Fact>,
    par: Parallelism,
    scratch: &mut MatchScratch,
) {
    let mut heads: Vec<(Fact, bool)> = Vec::new();
    while !delta.is_empty() {
        stats.rounds += 1;
        let by_rel = seminaive::group_deltas(&delta);
        let sharded: rustc_hash::FxHashMap<crate::symbol::Symbol, Vec<Relation>> = by_rel
            .iter()
            .filter(|(_, r)| r.len() >= MIN_PARALLEL_TUPLES)
            .map(|(&rel, r)| (rel, shard_relation(r, par.threads() * SHARDS_PER_THREAD)))
            .collect();
        let mut next: Vec<Fact> = Vec::new();
        for cr in rules {
            let rid = cr.id();
            for (li, lit) in cr.rule().body.iter().enumerate() {
                if !lit.positive {
                    continue;
                }
                let Some(drel) = by_rel.get(&lit.atom.rel) else { continue };
                stats.firings += 1;
                heads.clear();
                match sharded.get(&lit.atom.rel) {
                    Some(shards) => {
                        fire_sharded(cr.delta_plan(li), db, shards, par.threads(), &mut heads)
                    }
                    None => cr.delta_plan(li).for_each_head(db, Some(drel), &[], scratch, |head| {
                        let existed = db.contains(&head);
                        heads.push((head, existed));
                        true
                    }),
                }
                // Two phases, like the sequential engine: existing-fact
                // callbacks fire during enumeration, insertions (and their
                // callbacks) only after the whole firing enumerated.
                let mut out: Vec<Fact> = Vec::new();
                for (f, existed) in heads.drain(..) {
                    if existed {
                        sink.on_existing_fact(rid, &f);
                    } else {
                        out.push(f);
                    }
                }
                for f in out {
                    if db.insert(f.clone()) {
                        sink.on_new_fact(rid, &f);
                        next.push(f.clone());
                        added.push(f);
                    }
                }
            }
        }
        delta = next;
    }
}

/// Parallel counterpart of [`incremental::stratum_saturate`]: incremental
/// `SAT(P_i, M)` for one stratum — re-derivation of removal victims,
/// negative-delta firing over removed tuples, then positive delta rounds —
/// with the firings sharded across `par` workers.
#[allow(clippy::too_many_arguments)]
pub fn stratum_saturate<S: NewFactSink>(
    db: &mut Database,
    rules: &[CompiledRule],
    pos_delta: &[Fact],
    neg_delta: &[Fact],
    rederive_candidates: &[Fact],
    sink: &mut S,
    stats: &mut DeltaStats,
    par: Parallelism,
) -> Vec<Fact> {
    if !par.is_parallel() {
        return incremental::stratum_saturate(
            db,
            rules,
            pos_delta,
            neg_delta,
            rederive_candidates,
            sink,
            stats,
        );
    }
    let mut scratch = MatchScratch::new();
    let mut added: Vec<Fact> = Vec::new();
    let mut frontier: Vec<Fact> = pos_delta.to_vec();

    // 1. Re-derivation of this stratum's removed facts: point queries with
    //    first-witness early exit — sequential on purpose.
    for fact in rederive_candidates {
        if db.contains(fact) {
            continue;
        }
        if let Some(rid) = incremental::rederive_with(db, rules, fact, &mut scratch) {
            db.insert(fact.clone());
            sink.on_new_fact(rid, fact);
            frontier.push(fact.clone());
            added.push(fact.clone());
        }
    }

    // 2. Negative-delta firing: removed lower-stratum tuples newly satisfy
    //    negative hypotheses.
    if !neg_delta.is_empty() {
        let removed_by_rel = seminaive::group_deltas(neg_delta);
        let mut heads: Vec<(Fact, bool)> = Vec::new();
        for cr in rules {
            let rid = cr.id();
            for (li, lit) in cr.rule().body.iter().enumerate() {
                if lit.positive {
                    continue;
                }
                let Some(drel) = removed_by_rel.get(&lit.atom.rel) else { continue };
                stats.firings += 1;
                heads.clear();
                collect_delta_heads(cr.delta_plan(li), db, drel, par, &mut scratch, &mut heads);
                let mut out: Vec<Fact> = Vec::new();
                for (f, existed) in heads.drain(..) {
                    if existed {
                        sink.on_existing_fact(rid, &f);
                    } else {
                        out.push(f);
                    }
                }
                for f in out {
                    if db.insert(f.clone()) {
                        sink.on_new_fact(rid, &f);
                        frontier.push(f.clone());
                        added.push(f);
                    }
                }
            }
        }
    }

    // 3. Ordinary semi-naive rounds over the positive frontier.
    drive_par(db, rules, frontier, sink, stats, &mut added, par, &mut scratch);
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NullNewFact;
    use crate::model::{StratKind, Strata};
    use crate::program::{Program, RuleId};
    use crate::symbol::Symbol;
    use crate::term::Value;

    fn setup(src: &str) -> (Database, Vec<CompiledRule>) {
        let p = Program::parse(src).unwrap();
        let db = Database::from_facts(p.facts().cloned());
        let rules = crate::eval::plan::compile_rules(p.rules().map(|(id, r)| (id, r.clone())));
        (db, rules)
    }

    /// A transitive-closure program with enough edges that delta rounds
    /// clear [`MIN_PARALLEL_TUPLES`] and actually shard.
    fn big_tc(nodes: u64, edges: usize, seed: u64) -> String {
        let mut src = String::new();
        let mut x = seed | 1;
        for _ in 0..edges {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (x >> 33) % nodes;
            let b = (x >> 13) % nodes;
            src.push_str(&format!("e({a}, {b}). "));
        }
        src.push_str("p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).");
        src
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert!(!Parallelism::sequential().is_parallel());
        assert_eq!(Parallelism::new(0).threads(), 1, "clamped to one worker");
        assert_eq!(Parallelism::new(4).threads(), 4);
        assert_eq!(Parallelism::new(100_000).threads(), MAX_THREADS, "clamped to the cap");
        assert_eq!(Parallelism::from_env_value(Some("100000")).threads(), MAX_THREADS);
        assert!(Parallelism::new(4).is_parallel());
        assert_eq!(Parallelism::default(), Parallelism::sequential());
        // STRATA_THREADS resolution, without touching the environment.
        assert_eq!(Parallelism::from_env_value(Some("3")).threads(), 3);
        assert_eq!(Parallelism::from_env_value(Some(" 2 ")).threads(), 2);
        assert_eq!(Parallelism::from_env_value(Some("0")).threads(), 1);
        let auto = Parallelism::from_env_value(None);
        assert!((1..=MAX_AUTO_THREADS).contains(&auto.threads()));
        assert_eq!(Parallelism::from_env_value(Some("not a number")), auto);
    }

    #[test]
    fn sharding_preserves_order_and_partitions() {
        let mut rel = Relation::new(2);
        for i in 0..100i64 {
            rel.insert(vec![Value::int(i % 7), Value::int(i)].into());
        }
        let original: Vec<Vec<Value>> = rel.iter().map(<[Value]>::to_vec).collect();
        for shards in [1, 3, 8, 100, 1000] {
            let split = shard_relation(&rel, shards);
            assert!(split.len() <= shards.max(1));
            let rejoined: Vec<Vec<Value>> =
                split.iter().flat_map(|s| s.iter().map(<[Value]>::to_vec)).collect();
            assert_eq!(rejoined, original, "{shards} shards");
        }
    }

    #[test]
    fn saturate_matches_sequential_across_thread_counts() {
        let src = big_tc(24, 160, 7);
        let (seq_db, rules) = {
            let (mut db, rules) = setup(&src);
            let mut stats = DeltaStats::default();
            seminaive::saturate(&mut db, &rules, &mut NullNewFact, &mut stats);
            (db, rules)
        };
        for threads in [1, 2, 3, 8] {
            let (mut db, _) = setup(&src);
            let mut stats = DeltaStats::default();
            let added =
                saturate(&mut db, &rules, &mut NullNewFact, &mut stats, Parallelism::new(threads));
            assert_eq!(db, seq_db, "{threads} threads");
            assert!(!added.is_empty());
        }
    }

    #[test]
    fn stats_and_sink_are_bit_identical_to_sequential() {
        struct Collect(Vec<(&'static str, RuleId, String)>);
        impl NewFactSink for Collect {
            fn on_new_fact(&mut self, rule: RuleId, fact: &Fact) {
                self.0.push(("new", rule, fact.to_string()));
            }
            fn on_existing_fact(&mut self, rule: RuleId, fact: &Fact) {
                self.0.push(("existing", rule, fact.to_string()));
            }
        }
        let src = big_tc(16, 120, 3);
        let (mut db_a, rules) = setup(&src);
        let mut stats_a = DeltaStats::default();
        let mut sink_a = Collect(Vec::new());
        let added_a = seminaive::saturate(&mut db_a, &rules, &mut sink_a, &mut stats_a);

        let (mut db_b, _) = setup(&src);
        let mut stats_b = DeltaStats::default();
        let mut sink_b = Collect(Vec::new());
        let added_b = saturate(&mut db_b, &rules, &mut sink_b, &mut stats_b, Parallelism::new(4));

        assert_eq!(stats_a, stats_b, "firings and rounds must match");
        assert_eq!(added_a, added_b, "added facts, in order");
        assert_eq!(sink_a.0, sink_b.0, "sink callbacks, in order");
        assert_eq!(db_a, db_b);
    }

    #[test]
    fn negation_delta_firing_matches_sequential() {
        // Many removed tuples → the negative-delta path shards.
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("s({i}). "));
        }
        src.push_str("r(X) :- s(X), !a(X).");
        let (db_base, rules) = setup(&src);
        let removed: Vec<Fact> =
            (0..150).map(|i| Fact::parse(&format!("a({i})")).unwrap()).collect();
        let run = |par: Parallelism| {
            let mut db = db_base.clone();
            let mut stats = DeltaStats::default();
            let added = stratum_saturate(
                &mut db,
                &rules,
                &[],
                &removed,
                &[],
                &mut NullNewFact,
                &mut stats,
                par,
            );
            (db, stats, added)
        };
        let seq = run(Parallelism::sequential());
        for threads in [2, 8] {
            let par = run(Parallelism::new(threads));
            assert_eq!(seq.0, par.0, "{threads} threads: model");
            assert_eq!(seq.1, par.1, "{threads} threads: stats");
            assert_eq!(seq.2, par.2, "{threads} threads: added order");
        }
    }

    #[test]
    fn positive_delta_rounds_match_sequential() {
        let src = big_tc(20, 140, 11);
        let (db_base, rules) = setup(&src);
        // Saturate a copy first, then drive a fresh seed through both paths.
        let mut warmed = db_base.clone();
        seminaive::saturate(&mut warmed, &rules, &mut NullNewFact, &mut DeltaStats::default());
        let seeds: Vec<Fact> = (0..80)
            .map(|i| Fact::parse(&format!("p({}, {})", i % 20, (i * 7) % 20)).unwrap())
            .collect();
        let run = |par: Parallelism| {
            let mut db = warmed.clone();
            let mut fresh = Vec::new();
            for s in &seeds {
                if db.insert(s.clone()) {
                    fresh.push(s.clone());
                }
            }
            let mut added = Vec::new();
            let mut stats = DeltaStats::default();
            drive(&mut db, &rules, fresh, &mut NullNewFact, &mut stats, &mut added, par);
            (db, stats, added)
        };
        let seq = run(Parallelism::sequential());
        let par = run(Parallelism::new(8));
        assert_eq!(seq.0, par.0);
        assert_eq!(seq.1, par.1);
        assert_eq!(seq.2, par.2);
    }

    /// Regression test for the scratch-buffer sharing hazard: two threads
    /// saturating from the **same** (shared, immutable) `Strata` must not
    /// corrupt each other's buffers — every evaluation scratch is created
    /// thread-locally, never shared.
    #[test]
    fn shared_strata_saturated_from_two_threads() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<MatchScratch>();
        assert_sync::<CompiledRule>();
        assert_sync::<Database>();

        let src = big_tc(18, 130, 5);
        let program = Program::parse(&src).unwrap();
        let strata = Strata::build(&program, StratKind::ByLevels).unwrap();
        let expected = {
            let mut db = Database::new();
            crate::model::construct_seminaive(&strata, &mut db, &mut NullNewFact);
            db
        };
        let results: Vec<Database> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(|| {
                        let mut db = Database::new();
                        for i in 0..strata.num_strata() {
                            for f in strata.facts_of(i) {
                                db.insert(f.clone());
                            }
                            saturate(
                                &mut db,
                                strata.rules_of(i),
                                &mut NullNewFact,
                                &mut DeltaStats::default(),
                                Parallelism::new(2),
                            );
                        }
                        db
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        });
        for db in &results {
            assert_eq!(db, &expected);
        }
        assert!(expected.count(Symbol::new("p")) > 0);
    }

    #[test]
    fn small_deltas_stay_on_the_calling_thread() {
        // Below MIN_PARALLEL_TUPLES nothing shards, but results still match.
        let (mut db_seq, rules) =
            setup("e(1, 2). e(2, 3). p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).");
        let (mut db_par, _) =
            setup("e(1, 2). e(2, 3). p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).");
        seminaive::saturate(&mut db_seq, &rules, &mut NullNewFact, &mut DeltaStats::default());
        saturate(
            &mut db_par,
            &rules,
            &mut NullNewFact,
            &mut DeltaStats::default(),
            Parallelism::new(8),
        );
        assert_eq!(db_seq, db_par);
    }
}
