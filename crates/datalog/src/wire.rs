//! A minimal binary codec for persisted records.
//!
//! The durable store (`strata-store`) frames, checksums, and files records;
//! this module defines how the *language-level* values inside those records
//! are laid out. The format is deliberately primitive — fixed-width
//! little-endian integers and length-prefixed byte strings — because the
//! build environment is offline and the workspace vendors no serialization
//! crates.
//!
//! Symbols are encoded by **name**, never by interner id: interner ids are
//! assigned in first-intern order and do not survive a process restart.
//!
//! Layouts (all integers little-endian):
//!
//! ```text
//! str   ::= len:u32 utf8-bytes
//! value ::= 0x00 str            (symbol)
//!         | 0x01 i64            (integer)
//! fact  ::= rel:str arity:u32 value*
//! ```

use crate::atom::Fact;
use crate::storage::TupleStore;
use crate::term::Value;

/// A decoding failure: truncated input or an invalid tag/payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Offset at which decoding failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for WireError {}

/// Appends a `u32` (little-endian).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` (little-endian two's complement).
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).expect("string too long for wire format"));
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, u32::try_from(b.len()).expect("blob too long for wire format"));
    buf.extend_from_slice(b);
}

/// Appends one [`Value`].
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Sym(s) => {
            buf.push(0);
            put_str(buf, s.as_str());
        }
        Value::Int(i) => {
            buf.push(1);
            put_i64(buf, *i);
        }
    }
}

/// Appends one [`Fact`].
pub fn put_fact(buf: &mut Vec<u8>, f: &Fact) {
    put_str(buf, f.rel.as_str());
    put_u32(buf, f.arity() as u32);
    for v in f.args.iter() {
        put_value(buf, v);
    }
}

/// Appends every fact of a [`TupleStore`], count-prefixed, in sorted order
/// (sorted so identical states serialize to identical bytes).
pub fn put_store(buf: &mut Vec<u8>, store: &dyn TupleStore) {
    let mut facts: Vec<Fact> = Vec::with_capacity(store.fact_count());
    store.for_each_fact(&mut |f| facts.push(f.clone()));
    facts.sort_by(fact_wire_cmp);
    put_u32(buf, facts.len() as u32);
    for f in &facts {
        put_fact(buf, f);
    }
}

/// A process-independent total order on values: integers (numeric) before
/// symbols (by name). Allocation-free — this runs inside the sort of every
/// snapshot and support dump.
pub fn value_wire_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Sym(x), Value::Sym(y)) => x.as_str().cmp(y.as_str()),
        (Value::Int(_), Value::Sym(_)) => std::cmp::Ordering::Less,
        (Value::Sym(_), Value::Int(_)) => std::cmp::Ordering::Greater,
    }
}

/// A process-independent total order on facts: by relation *name*, then by
/// argument content ([`value_wire_cmp`]). `Fact`'s derived `Ord` goes
/// through interner ids, which differ across processes.
pub fn fact_wire_cmp(a: &Fact, b: &Fact) -> std::cmp::Ordering {
    match a.rel.as_str().cmp(b.rel.as_str()) {
        std::cmp::Ordering::Equal => {}
        ord => return ord,
    }
    for (x, y) in a.args.iter().zip(b.args.iter()) {
        match value_wire_cmp(x, y) {
            std::cmp::Ordering::Equal => {}
            ord => return ord,
        }
    }
    a.args.len().cmp(&b.args.len())
}

/// A cursor over encoded bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, msg: &'static str) -> WireError {
        WireError { at: self.pos, msg }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.err("length overflow"))?;
        if end > self.buf.len() {
            return Err(self.err("truncated input"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8"))
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_blob(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads one [`Value`].
    pub fn get_value(&mut self) -> Result<Value, WireError> {
        match self.get_u8()? {
            0 => Ok(Value::sym(&self.get_str()?)),
            1 => Ok(Value::Int(self.get_i64()?)),
            _ => Err(self.err("invalid value tag")),
        }
    }

    /// Reads one [`Fact`].
    pub fn get_fact(&mut self) -> Result<Fact, WireError> {
        let rel = self.get_str()?;
        let arity = self.get_u32()? as usize;
        if arity > self.buf.len() - self.pos {
            // Each value takes at least one byte: cheap sanity bound that
            // stops corrupt arities from attempting huge allocations.
            return Err(self.err("fact arity exceeds remaining input"));
        }
        let mut args = Vec::with_capacity(arity);
        for _ in 0..arity {
            args.push(self.get_value()?);
        }
        Ok(Fact::new(rel.as_str(), args))
    }

    /// Reads a count-prefixed fact list into `store`; returns the count.
    pub fn get_store(&mut self, store: &mut dyn TupleStore) -> Result<usize, WireError> {
        let n = self.get_u32()? as usize;
        for _ in 0..n {
            let f = self.get_fact()?;
            store.insert_fact(f);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{parse_facts, Database};

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        put_i64(&mut buf, -42);
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_blob().unwrap(), vec![1, 2, 3]);
        assert!(r.is_at_end());
    }

    #[test]
    fn facts_round_trip_by_name_not_id() {
        let f = Fact::new("weird rel.name", vec![Value::sym("a b"), Value::int(-5)]);
        let mut buf = Vec::new();
        put_fact(&mut buf, &f);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_fact().unwrap(), f);
        assert!(r.is_at_end());
    }

    #[test]
    fn store_round_trip_and_stable_bytes() {
        let db = Database::from_facts(parse_facts("e(1, 2). e(2, 3). p(a)."));
        let mut buf = Vec::new();
        put_store(&mut buf, &db);
        let mut out = Database::new();
        assert_eq!(Reader::new(&buf).get_store(&mut out).unwrap(), 3);
        assert_eq!(out, db);
        // Identical state ⇒ identical bytes, regardless of insertion order.
        let db2 = Database::from_facts(parse_facts("p(a). e(2, 3). e(1, 2)."));
        let mut buf2 = Vec::new();
        put_store(&mut buf2, &db2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn truncated_and_corrupt_input_reported() {
        let mut buf = Vec::new();
        put_fact(&mut buf, &Fact::parse("p(1)").unwrap());
        for cut in 0..buf.len() {
            assert!(Reader::new(&buf[..cut]).get_fact().is_err(), "cut {cut}");
        }
        let mut r = Reader::new(&[9]);
        assert!(r.get_value().is_err(), "invalid tag");
        // Corrupt arity must not allocate absurdly.
        let mut bad = Vec::new();
        put_str(&mut bad, "p");
        put_u32(&mut bad, u32::MAX);
        assert!(Reader::new(&bad).get_fact().is_err());
    }

    #[test]
    fn wire_cmp_is_process_independent_shape() {
        let a = Fact::parse("a(zz)").unwrap();
        let b = Fact::parse("b(aa)").unwrap();
        assert_eq!(fact_wire_cmp(&a, &b), std::cmp::Ordering::Less);
        // Ints sort before symbols at the same position, and numerically.
        let i = Fact::parse("c(1)").unwrap();
        let s = Fact::parse("c(x)").unwrap();
        assert_eq!(fact_wire_cmp(&i, &s), std::cmp::Ordering::Less);
        assert_eq!(fact_wire_cmp(&i, &i), std::cmp::Ordering::Equal);
        let two = Fact::parse("c(2)").unwrap();
        let ten = Fact::parse("c(10)").unwrap();
        assert_eq!(fact_wire_cmp(&two, &ten), std::cmp::Ordering::Less);
        // Shorter argument lists sort first on a shared prefix.
        let short = Fact::parse("c(1)").unwrap();
        let long = Fact::parse("c(1, 2)").unwrap();
        assert_eq!(fact_wire_cmp(&short, &long), std::cmp::Ordering::Less);
    }
}
