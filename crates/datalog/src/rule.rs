//! Rules (clauses) `head :- body` with safety checking.

use std::fmt;

use rustc_hash::FxHashSet;

use crate::atom::Atom;
use crate::error::SafetyError;
use crate::literal::Literal;
use crate::symbol::Symbol;

/// A clause `head :- l1, …, lk.` where each `li` is a possibly negated atom.
///
/// A rule with an empty body and a ground head is a *fact clause*; the
/// [`crate::Program`] stores those separately as asserted facts.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The conclusion.
    pub head: Atom,
    /// The hypotheses.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Builds a rule and checks it for safety (range restriction).
    pub fn new(head: Atom, body: Vec<Literal>) -> Result<Rule, SafetyError> {
        let rule = Rule { head, body };
        rule.check_safety()?;
        Ok(rule)
    }

    /// Builds a rule without the safety check (for internal/test use).
    pub fn new_unchecked(head: Atom, body: Vec<Literal>) -> Rule {
        Rule { head, body }
    }

    /// Parses a single rule such as `p(X) :- q(X), !r(X).`.
    pub fn parse(src: &str) -> Result<Rule, crate::error::DatalogError> {
        crate::parser::parse_rule(src)
    }

    /// Checks the safety (range-restriction) condition: every variable in the
    /// head and in every negative literal occurs in a positive body literal.
    pub fn check_safety(&self) -> Result<(), SafetyError> {
        let positive_vars: FxHashSet<Symbol> =
            self.body.iter().filter(|l| l.positive).flat_map(|l| l.atom.vars()).collect();
        for v in self.head.vars() {
            if !positive_vars.contains(&v) {
                return Err(SafetyError {
                    var: v,
                    rule: self.to_string(),
                    in_negative_literal: false,
                });
            }
        }
        for lit in self.body.iter().filter(|l| !l.positive) {
            for v in lit.atom.vars() {
                if !positive_vars.contains(&v) {
                    return Err(SafetyError {
                        var: v,
                        rule: self.to_string(),
                        in_negative_literal: true,
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether this clause is a ground unit clause (a fact).
    pub fn is_fact_clause(&self) -> bool {
        self.body.is_empty() && self.head.is_ground()
    }

    /// Relations occurring positively in the body (with duplicates removed).
    pub fn pos_body_rels(&self) -> Vec<Symbol> {
        let mut seen = FxHashSet::default();
        self.body
            .iter()
            .filter(|l| l.positive)
            .map(|l| l.atom.rel)
            .filter(|r| seen.insert(*r))
            .collect()
    }

    /// Relations occurring negatively in the body (with duplicates removed).
    pub fn neg_body_rels(&self) -> Vec<Symbol> {
        let mut seen = FxHashSet::default();
        self.body
            .iter()
            .filter(|l| !l.positive)
            .map(|l| l.atom.rel)
            .filter(|r| seen.insert(*r))
            .collect()
    }

    /// All distinct variables of the rule.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for v in self.head.vars().chain(self.body.iter().flat_map(|l| l.atom.vars())) {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            f.write_str(" :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        f.write_str(".")
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn atom(rel: &str, terms: Vec<Term>) -> Atom {
        Atom::new(rel, terms)
    }

    #[test]
    fn safe_rule_accepted() {
        let r = Rule::new(
            atom("p", vec![Term::var("X")]),
            vec![
                Literal::pos(atom("q", vec![Term::var("X")])),
                Literal::neg(atom("r", vec![Term::var("X")])),
            ],
        );
        assert!(r.is_ok());
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let r = Rule::new(
            atom("p", vec![Term::var("Y")]),
            vec![Literal::pos(atom("q", vec![Term::var("X")]))],
        );
        let err = r.unwrap_err();
        assert_eq!(err.var, Symbol::new("Y"));
        assert!(!err.in_negative_literal);
    }

    #[test]
    fn unsafe_negative_var_rejected() {
        let r = Rule::new(
            atom("p", vec![Term::var("X")]),
            vec![
                Literal::pos(atom("q", vec![Term::var("X")])),
                Literal::neg(atom("r", vec![Term::var("Z")])),
            ],
        );
        let err = r.unwrap_err();
        assert_eq!(err.var, Symbol::new("Z"));
        assert!(err.in_negative_literal);
    }

    #[test]
    fn ground_rule_with_empty_positive_body_is_safe() {
        // `q :- !p.` is safe: there are no variables at all.
        let r = Rule::new(atom("q", vec![]), vec![Literal::neg(atom("p", vec![]))]);
        assert!(r.is_ok());
    }

    #[test]
    fn fact_clause_detection() {
        let f = Rule::new(atom("p", vec![Term::sym("a")]), vec![]).unwrap();
        assert!(f.is_fact_clause());
        let r = Rule::new(
            atom("p", vec![Term::var("X")]),
            vec![Literal::pos(atom("q", vec![Term::var("X")]))],
        )
        .unwrap();
        assert!(!r.is_fact_clause());
    }

    #[test]
    fn body_rel_extraction_dedupes() {
        let r = Rule::new(
            atom("p", vec![Term::var("X")]),
            vec![
                Literal::pos(atom("q", vec![Term::var("X")])),
                Literal::pos(atom("q", vec![Term::var("X")])),
                Literal::neg(atom("r", vec![Term::var("X")])),
                Literal::neg(atom("r", vec![Term::var("X")])),
            ],
        )
        .unwrap();
        assert_eq!(r.pos_body_rels(), vec![Symbol::new("q")]);
        assert_eq!(r.neg_body_rels(), vec![Symbol::new("r")]);
    }

    #[test]
    fn display_round() {
        let r = Rule::new(
            atom("p", vec![Term::var("X")]),
            vec![
                Literal::pos(atom("q", vec![Term::var("X")])),
                Literal::neg(atom("r", vec![Term::var("X")])),
            ],
        )
        .unwrap();
        assert_eq!(r.to_string(), "p(X) :- q(X), !r(X).");
        let f = Rule::new(atom("a", vec![]), vec![]).unwrap();
        assert_eq!(f.to_string(), "a.");
    }
}
