//! The dependency graph `D_P`, the stratification test, and stratifications.
//!
//! Following the paper's §2: `(r, q) ∈ D_P` iff some clause uses `r` in its
//! conclusion and `q` in a hypothesis. Arcs carry a sign — *positive* when
//! `q` occurs positively, *negative* when it occurs under negation; an arc
//! can be both. A program is **stratified** iff no cycle of `D_P` contains a
//! negative arc.

use rustc_hash::FxHashMap;

use crate::error::StratificationError;
use crate::program::Program;
use crate::symbol::Symbol;

/// A dense mapping from the relations of a program to indices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct RelIndex {
    rels: Vec<Symbol>,
    index: FxHashMap<Symbol, u32>,
}

impl RelIndex {
    /// An empty index.
    pub fn new() -> RelIndex {
        RelIndex::default()
    }

    /// Builds the index over every relation mentioned in `program`,
    /// in sorted-by-name order (deterministic across runs).
    pub fn build(program: &Program) -> RelIndex {
        let mut ix = RelIndex::new();
        ix.extend_with(program);
        ix
    }

    /// Adds any relations of `program` not yet indexed, **appending** them so
    /// existing indices stay valid. The maintenance engines rely on this:
    /// their per-fact supports store relation indices in bitsets, which must
    /// survive rule insertions that introduce new relations.
    pub fn extend_with(&mut self, program: &Program) {
        for rel in program.relations() {
            self.ensure(rel);
        }
    }

    /// Index of `rel`, assigning the next free index if unknown.
    pub fn ensure(&mut self, rel: Symbol) -> u32 {
        if let Some(&i) = self.index.get(&rel) {
            return i;
        }
        let i = u32::try_from(self.rels.len()).expect("relation index overflow");
        self.rels.push(rel);
        self.index.insert(rel, i);
        i
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the program mentions no relations.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// The dense index of `rel`, if known.
    pub fn get(&self, rel: Symbol) -> Option<u32> {
        self.index.get(&rel).copied()
    }

    /// The dense index of `rel`; panics if unknown.
    pub fn of(&self, rel: Symbol) -> u32 {
        self.get(rel).unwrap_or_else(|| panic!("unknown relation `{rel}`"))
    }

    /// The relation at a dense index.
    pub fn rel(&self, i: u32) -> Symbol {
        self.rels[i as usize]
    }

    /// Iterates over `(index, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Symbol)> + '_ {
        self.rels.iter().enumerate().map(|(i, &r)| (i as u32, r))
    }
}

/// Sign information attached to an arc of the dependency graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArcSign {
    /// The body relation occurs positively in some clause.
    pub positive: bool,
    /// The body relation occurs negatively in some clause.
    pub negative: bool,
}

/// The dependency graph of a program.
#[derive(Clone, Debug)]
pub struct DepGraph {
    index: RelIndex,
    /// `arcs[r]` lists `(q, sign)` with an arc `r → q` (r's definition uses q).
    arcs: Vec<FxHashMap<u32, ArcSign>>,
    /// Reverse adjacency: `rev[q]` lists `(r, sign)` for arcs `r → q`.
    rev: Vec<FxHashMap<u32, ArcSign>>,
}

impl DepGraph {
    /// Builds the dependency graph of `program`.
    pub fn build(program: &Program) -> DepGraph {
        Self::build_with(program, RelIndex::build(program))
    }

    /// Builds the dependency graph over a caller-supplied (superset) index.
    ///
    /// # Panics
    /// If `index` does not cover every relation of `program`.
    pub fn build_with(program: &Program, index: RelIndex) -> DepGraph {
        let n = index.len();
        let mut arcs: Vec<FxHashMap<u32, ArcSign>> = vec![FxHashMap::default(); n];
        let mut rev: Vec<FxHashMap<u32, ArcSign>> = vec![FxHashMap::default(); n];
        for (_, rule) in program.rules() {
            let head = index.of(rule.head.rel);
            for lit in &rule.body {
                let dep = index.of(lit.atom.rel);
                let sign = arcs[head as usize].entry(dep).or_default();
                if lit.positive {
                    sign.positive = true;
                } else {
                    sign.negative = true;
                }
                let sign = *sign;
                rev[dep as usize].insert(head, sign);
            }
        }
        // `rev` entries may hold stale signs when a later rule adds the other
        // polarity; rebuild them from the forward arcs for consistency.
        for (r, row) in arcs.iter().enumerate().take(n) {
            for (&q, &sign) in row {
                rev[q as usize].insert(r as u32, sign);
            }
        }
        DepGraph { index, arcs, rev }
    }

    /// The relation index underlying this graph.
    pub fn rel_index(&self) -> &RelIndex {
        &self.index
    }

    /// Number of relations (nodes).
    pub fn num_rels(&self) -> usize {
        self.index.len()
    }

    /// Iterates over the arcs leaving `r`: `(target, sign)`.
    pub fn arcs_from(&self, r: u32) -> impl Iterator<Item = (u32, ArcSign)> + '_ {
        self.arcs[r as usize].iter().map(|(&q, &s)| (q, s))
    }

    /// Iterates over the arcs entering `q`: `(source, sign)`.
    pub fn arcs_into(&self, q: u32) -> impl Iterator<Item = (u32, ArcSign)> + '_ {
        self.rev[q as usize].iter().map(|(&r, &s)| (r, s))
    }

    /// The sign of arc `r → q`, if present.
    pub fn arc(&self, r: u32, q: u32) -> Option<ArcSign> {
        self.arcs[r as usize].get(&q).copied()
    }

    /// Strongly connected components (Tarjan, iterative), in reverse
    /// topological order: every arc leaves a later component for an earlier
    /// one or stays inside its component.
    pub fn sccs(&self) -> Vec<Vec<u32>> {
        let n = self.num_rels();
        let mut sccs = Vec::new();
        let mut indices = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        // Explicit DFS stack of (node, child iterator position).
        let mut work: Vec<(u32, Vec<u32>, usize)> = Vec::new();

        for start in 0..n as u32 {
            if indices[start as usize] != u32::MAX {
                continue;
            }
            indices[start as usize] = next_index;
            lowlink[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;
            let children: Vec<u32> = self.arcs[start as usize].keys().copied().collect();
            work.push((start, children, 0));

            while let Some((v, children, mut i)) = work.pop() {
                let mut descended = false;
                while i < children.len() {
                    let w = children[i];
                    i += 1;
                    if indices[w as usize] == u32::MAX {
                        work.push((v, children, i));
                        indices[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        let wc: Vec<u32> = self.arcs[w as usize].keys().copied().collect();
                        work.push((w, wc, 0));
                        descended = true;
                        break;
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(indices[w as usize]);
                    }
                }
                if descended {
                    continue;
                }
                if lowlink[v as usize] == indices[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                if let Some(&mut (p, _, _)) = work.last_mut() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
            }
        }
        sccs
    }

    /// Connected components of the *undirected* dependency relation: two
    /// relations land in the same component iff some dependency path (in
    /// either direction, ignoring signs) links them. Relations in different
    /// components can never interact through rules, which is what makes them
    /// a sound partition key for sharded commit.
    ///
    /// Members of each component are sorted by relation name, and components
    /// are ordered by their smallest member's name, so the partition is
    /// deterministic for a given program regardless of index build order.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.num_rels();
        let mut comp_of = vec![u32::MAX; n];
        let mut comps: Vec<Vec<u32>> = Vec::new();
        for start in 0..n as u32 {
            if comp_of[start as usize] != u32::MAX {
                continue;
            }
            let ci = comps.len() as u32;
            let mut members = vec![start];
            comp_of[start as usize] = ci;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                let neighbors =
                    self.arcs_from(v).map(|(q, _)| q).chain(self.arcs_into(v).map(|(r, _)| r));
                for w in neighbors {
                    if comp_of[w as usize] == u32::MAX {
                        comp_of[w as usize] = ci;
                        members.push(w);
                        queue.push_back(w);
                    }
                }
            }
            members.sort_by_key(|&r| self.index.rel(r).as_str());
            comps.push(members);
        }
        comps.sort_by_key(|c| self.index.rel(c[0]).as_str());
        comps
    }

    /// Checks stratifiability: no cycle may contain a negative arc.
    ///
    /// Equivalently, no negative arc may connect two relations of the same
    /// strongly connected component. On failure, returns a witness cycle.
    pub fn check_stratified(&self) -> Result<(), StratificationError> {
        let sccs = self.sccs();
        let mut comp_of = vec![0u32; self.num_rels()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &r in comp {
                comp_of[r as usize] = ci as u32;
            }
        }
        for r in 0..self.num_rels() as u32 {
            for (q, sign) in self.arcs_from(r) {
                if sign.negative && comp_of[r as usize] == comp_of[q as usize] {
                    return Err(StratificationError { cycle: self.witness_cycle(r, q) });
                }
            }
        }
        Ok(())
    }

    /// Finds a path `q ⇝ r` (BFS) and closes it with the arc `r → q`,
    /// producing a readable witness cycle for error messages.
    fn witness_cycle(&self, r: u32, q: u32) -> Vec<Symbol> {
        let n = self.num_rels();
        let mut prev = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(q);
        let mut seen = vec![false; n];
        seen[q as usize] = true;
        while let Some(v) = queue.pop_front() {
            if v == r {
                break;
            }
            for (w, _) in self.arcs_from(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    prev[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
        let mut path = vec![r];
        let mut cur = r;
        while cur != q {
            cur = prev[cur as usize];
            if cur == u32::MAX {
                break; // self-loop case: r == q handled below
            }
            path.push(cur);
        }
        path.reverse(); // now q … r
        path.push(q); // close the cycle via arc r → q
        path.iter().map(|&i| self.index.rel(i)).collect()
    }
}

/// A stratification `P = P_1 ∪ … ∪ P_n`, represented as an assignment of
/// relations to strata `0..n`. Rules live in the stratum of their head.
#[derive(Clone, Debug)]
pub struct Stratification {
    /// `stratum_of[rel_index]` = stratum number, `0`-based.
    stratum_of: Vec<u32>,
    /// Relations grouped by stratum.
    strata: Vec<Vec<u32>>,
}

impl Stratification {
    /// The *by-levels* stratification: each relation gets the smallest legal
    /// stratum, so the number of strata is one plus the maximum number of
    /// negative arcs on any dependency path.
    pub fn by_levels(graph: &DepGraph) -> Result<Stratification, StratificationError> {
        graph.check_stratified()?;
        let sccs = graph.sccs(); // reverse topological: dependencies first
        let n = graph.num_rels();
        let mut level = vec![0u32; n];
        for comp in &sccs {
            // All members of an SCC share a stratum; internal arcs are
            // positive (checked above), so only arcs leaving the SCC count.
            let mut comp_level = 0u32;
            for &r in comp {
                for (q, sign) in graph.arcs_from(r) {
                    if comp.contains(&q) {
                        continue;
                    }
                    if sign.positive {
                        comp_level = comp_level.max(level[q as usize]);
                    }
                    if sign.negative {
                        comp_level = comp_level.max(level[q as usize] + 1);
                    }
                }
            }
            for &r in comp {
                level[r as usize] = comp_level;
            }
        }
        Ok(Stratification::from_levels(level))
    }

    /// A *maximal* stratification: one stratum per strongly connected
    /// component, in topological order, so no stratum can be decomposed
    /// further. (The paper assumes a maximal stratification is given.)
    pub fn maximal(graph: &DepGraph) -> Result<Stratification, StratificationError> {
        graph.check_stratified()?;
        let sccs = graph.sccs(); // reverse topological order
        let n = graph.num_rels();
        let mut level = vec![0u32; n];
        for (ci, comp) in sccs.iter().enumerate() {
            for &r in comp {
                level[r as usize] = ci as u32;
            }
        }
        Ok(Stratification::from_levels(level))
    }

    fn from_levels(stratum_of: Vec<u32>) -> Stratification {
        let num = stratum_of.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut strata = vec![Vec::new(); num];
        for (r, &l) in stratum_of.iter().enumerate() {
            strata[l as usize].push(r as u32);
        }
        Stratification { stratum_of, strata }
    }

    /// Stratum of a relation index.
    pub fn stratum_of(&self, rel: u32) -> usize {
        self.stratum_of[rel as usize] as usize
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Relation indices of a stratum.
    pub fn stratum(&self, i: usize) -> &[u32] {
        &self.strata[i]
    }

    /// Validates this stratification against a graph: positive arcs must not
    /// ascend, negative arcs must strictly descend. Used in tests.
    pub fn validate(&self, graph: &DepGraph) -> bool {
        (0..graph.num_rels() as u32).all(|r| {
            graph.arcs_from(r).all(|(q, sign)| {
                let (sr, sq) = (self.stratum_of(r), self.stratum_of(q));
                (!sign.positive || sq <= sr) && (!sign.negative || sq < sr)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    #[test]
    fn builds_signed_arcs() {
        let p = program("p(X) :- q(X), !r(X). q(a).");
        let g = DepGraph::build(&p);
        let ix = g.rel_index();
        let (p_, q_, r_) = (ix.of("p".into()), ix.of("q".into()), ix.of("r".into()));
        assert_eq!(g.arc(p_, q_), Some(ArcSign { positive: true, negative: false }));
        assert_eq!(g.arc(p_, r_), Some(ArcSign { positive: false, negative: true }));
        assert_eq!(g.arc(q_, p_), None);
    }

    #[test]
    fn arc_can_be_both_positive_and_negative() {
        let p = program("p(X) :- q(X). p(X) :- s(X), !q(X).");
        let g = DepGraph::build(&p);
        let ix = g.rel_index();
        let sign = g.arc(ix.of("p".into()), ix.of("q".into())).unwrap();
        assert!(sign.positive && sign.negative);
        // Reverse adjacency carries the merged sign too.
        let (src, rsign) = g.arcs_into(ix.of("q".into())).next().unwrap();
        assert_eq!(src, ix.of("p".into()));
        assert!(rsign.positive && rsign.negative);
    }

    #[test]
    fn sccs_group_mutual_recursion() {
        let p = program("p(X) :- q(X). q(X) :- p(X). r(X) :- p(X).");
        let g = DepGraph::build(&p);
        let sccs = g.sccs();
        let ix = g.rel_index();
        let pq: Vec<u32> = vec![ix.of("p".into()), ix.of("q".into())];
        assert!(sccs.iter().any(|c| {
            let mut c = c.clone();
            c.sort_unstable();
            let mut pq = pq.clone();
            pq.sort_unstable();
            c == pq
        }));
        assert_eq!(sccs.len(), 2);
    }

    #[test]
    fn sccs_in_reverse_topological_order() {
        let p = program("a(X) :- b(X). b(X) :- c(X). c(1).");
        let g = DepGraph::build(&p);
        let ix = g.rel_index();
        let sccs = g.sccs();
        let pos = |r: &str| sccs.iter().position(|c| c.contains(&ix.of(r.into()))).unwrap();
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn stratified_program_accepted() {
        let p = program("win(X) :- move(X, Y), !win(Y). move(a, b).");
        let g = DepGraph::build(&p);
        // win depends negatively on itself → not stratified!
        assert!(g.check_stratified().is_err());
    }

    #[test]
    fn positive_recursion_is_fine() {
        let p = program("path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).");
        let g = DepGraph::build(&p);
        assert!(g.check_stratified().is_ok());
    }

    #[test]
    fn negative_cycle_detected_with_witness() {
        let p = program("p(X) :- a(X), !q(X). q(X) :- a(X), r(X). r(X) :- p(X).");
        let g = DepGraph::build(&p);
        let err = g.check_stratified().unwrap_err();
        assert!(err.cycle.len() >= 2);
        // The witness mentions the relations of the cycle.
        let names: Vec<&str> = err.cycle.iter().map(|s| s.as_str()).collect();
        for r in ["p", "q", "r"] {
            assert!(names.contains(&r), "cycle {names:?} should mention {r}");
        }
    }

    #[test]
    fn self_negation_detected() {
        let p = program("p(X) :- a(X), !p(X).");
        let g = DepGraph::build(&p);
        assert!(g.check_stratified().is_err());
    }

    #[test]
    fn by_levels_stratification() {
        let p =
            program("e(1). p(X) :- e(X). q(X) :- e(X), !p(X). r(X) :- e(X), !q(X). s(X) :- r(X).");
        let g = DepGraph::build(&p);
        let s = Stratification::by_levels(&g).unwrap();
        let ix = g.rel_index();
        let level = |r: &str| s.stratum_of(ix.of(r.into()));
        assert_eq!(level("e"), 0);
        assert_eq!(level("p"), 0);
        assert_eq!(level("q"), 1);
        assert_eq!(level("r"), 2);
        assert_eq!(level("s"), 2);
        assert_eq!(s.num_strata(), 3);
        assert!(s.validate(&g));
    }

    #[test]
    fn maximal_stratification_splits_further() {
        let p = program("e(1). p(X) :- e(X). q(X) :- p(X). r(X) :- e(X), !q(X).");
        let g = DepGraph::build(&p);
        let max = Stratification::maximal(&g).unwrap();
        let lvl = Stratification::by_levels(&g).unwrap();
        assert!(max.num_strata() >= lvl.num_strata());
        assert!(max.validate(&g));
        assert!(lvl.validate(&g));
        // Maximal: each SCC is its own stratum, so p and q are separated.
        let ix = g.rel_index();
        assert_ne!(max.stratum_of(ix.of("p".into())), max.stratum_of(ix.of("q".into())));
    }

    #[test]
    fn mutual_recursion_shares_stratum() {
        let p = program("p(X) :- q(X). q(X) :- p(X). p(X) :- e(X). r(X) :- e(X), !p(X).");
        let g = DepGraph::build(&p);
        for s in [Stratification::by_levels(&g).unwrap(), Stratification::maximal(&g).unwrap()] {
            let ix = g.rel_index();
            assert_eq!(s.stratum_of(ix.of("p".into())), s.stratum_of(ix.of("q".into())));
            assert!(s.stratum_of(ix.of("r".into())) > s.stratum_of(ix.of("p".into())));
            assert!(s.validate(&g));
        }
    }

    #[test]
    fn empty_program_has_no_strata() {
        let p = program("");
        let g = DepGraph::build(&p);
        let s = Stratification::by_levels(&g).unwrap();
        assert_eq!(s.num_strata(), 0);
    }

    #[test]
    fn extend_with_keeps_existing_indices_stable() {
        let p1 = program("b(1). a(X) :- b(X).");
        let mut ix = RelIndex::build(&p1);
        let a_before = ix.of("a".into());
        let b_before = ix.of("b".into());
        let p2 = program("b(1). a(X) :- b(X). c(X) :- b(X), !a(X).");
        ix.extend_with(&p2);
        assert_eq!(ix.of("a".into()), a_before);
        assert_eq!(ix.of("b".into()), b_before);
        assert_eq!(ix.len(), 3);
        // A graph can be built over the extended index.
        let g = DepGraph::build_with(&p2, ix);
        assert!(g.check_stratified().is_ok());
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut ix = RelIndex::new();
        let i1 = ix.ensure("zzz_rel".into());
        let i2 = ix.ensure("zzz_rel".into());
        assert_eq!(i1, i2);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.rel(i1), Symbol::new("zzz_rel"));
    }

    #[test]
    fn components_split_independent_rule_groups() {
        let p = program(
            "p(X) :- q(X), !r(X). q(1). r(2). \
             x(A, B) :- y(A, B). y(1, 2). \
             lone(3).",
        );
        let g = DepGraph::build(&p);
        let ix = g.rel_index();
        let comps = g.components();
        let names: Vec<Vec<&str>> =
            comps.iter().map(|c| c.iter().map(|&r| ix.rel(r).as_str()).collect()).collect();
        assert_eq!(names, vec![vec!["lone"], vec!["p", "q", "r"], vec!["x", "y"]]);
    }

    #[test]
    fn components_follow_arcs_in_both_directions() {
        // `a` and `c` only meet through shared dependency `b`: a → b ← c.
        let p = program("a(X) :- b(X). c(X) :- b(X). d(1).");
        let g = DepGraph::build(&p);
        let ix = g.rel_index();
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        let abc = comps.iter().find(|c| c.contains(&ix.of("a".into()))).unwrap();
        assert!(abc.contains(&ix.of("b".into())));
        assert!(abc.contains(&ix.of("c".into())));
        assert!(!abc.contains(&ix.of("d".into())));
    }

    #[test]
    fn components_are_deterministic_under_index_order() {
        let p1 = program("q(1). p(X) :- q(X). z(2). y(X) :- z(X).");
        let p2 = program("z(2). y(X) :- z(X). q(1). p(X) :- q(X).");
        let to_names = |p: &Program| -> Vec<Vec<String>> {
            let g = DepGraph::build(p);
            g.components()
                .iter()
                .map(|c| c.iter().map(|&r| g.rel_index().rel(r).to_string()).collect())
                .collect()
        };
        assert_eq!(to_names(&p1), to_names(&p2));
    }

    #[test]
    fn facts_only_program_single_stratum() {
        let p = program("a(1). b(2).");
        let g = DepGraph::build(&p);
        let s = Stratification::by_levels(&g).unwrap();
        assert_eq!(s.num_strata(), 1);
        assert_eq!(s.stratum(0).len(), 2);
    }
}
