//! Body literals: positive or negated atoms.

use std::fmt;

use crate::atom::Atom;

/// A literal in a rule body: an atom or its negation.
///
/// Negation is *negation as failure* over the standard model: `!p(X)` holds
/// when `p(X)` is absent from the (already fixed, lower-stratum) model.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// `true` for a positive literal, `false` for a negated one.
    pub positive: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal { atom, positive: true }
    }

    /// A negated literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal { atom, positive: false }
    }

    /// Whether the literal is negated.
    pub fn is_negative(&self) -> bool {
        !self.positive
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            f.write_str("!")?;
        }
        write!(f, "{}", self.atom)
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn polarity() {
        let a = Atom::new("p", vec![Term::var("X")]);
        assert!(!Literal::pos(a.clone()).is_negative());
        assert!(Literal::neg(a).is_negative());
    }

    #[test]
    fn display() {
        let a = Atom::new("p", vec![Term::var("X")]);
        assert_eq!(Literal::pos(a.clone()).to_string(), "p(X)");
        assert_eq!(Literal::neg(a).to_string(), "!p(X)");
    }
}
