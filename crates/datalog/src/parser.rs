//! A hand-written lexer and recursive-descent parser for the textual syntax.
//!
//! Grammar (comments start with `%` or `//` and run to end of line):
//!
//! ```text
//! program  ::= clause*
//! clause   ::= atom ( ":-" literal ("," literal)* )? "."
//! literal  ::= ("!" | "not") atom | atom
//! atom     ::= (ident | STRING) ( "(" term ("," term)* ")" )?
//! term     ::= ident | INT | STRING | VARIABLE
//! ```
//!
//! Identifiers starting with a lowercase letter are constants / relation
//! names; identifiers starting with an uppercase letter or `_` are variables.
//! Strings (`"…"`, escapes `\" \\ \n \t \r \u{hex}`) denote symbols that
//! would not lex as identifiers — as constants *and* as relation names — so
//! `Display` output re-parses for arbitrary symbol content.

use crate::atom::{Atom, Fact};
use crate::error::{DatalogError, ParseError};
use crate::literal::Literal;
use crate::program::Program;
use crate::rule::Rule;
use crate::term::Term;

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Var(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,
    Bang,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, msg: msg.into() }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Reads the `{hex}` tail of a `\u{…}` escape (the `u` is consumed).
    fn lex_unicode_escape(&mut self) -> Result<char, ParseError> {
        if self.bump() != Some(b'{') {
            return Err(self.err("expected `{` after `\\u`"));
        }
        let mut code: u32 = 0;
        let mut digits = 0;
        loop {
            match self.bump() {
                Some(b'}') if digits > 0 => break,
                Some(c) if c.is_ascii_hexdigit() && digits < 6 => {
                    code = code * 16 + (c as char).to_digit(16).unwrap();
                    digits += 1;
                }
                _ => return Err(self.err("invalid `\\u{…}` escape")),
            }
        }
        char::from_u32(code).ok_or_else(|| self.err("`\\u{…}` escape is not a scalar value"))
    }

    fn next_token(&mut self) -> Result<Spanned, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let spanned = |tok| Spanned { tok, line, col };
        let Some(c) = self.peek() else {
            return Ok(spanned(Tok::Eof));
        };
        match c {
            b'(' => {
                self.bump();
                Ok(spanned(Tok::LParen))
            }
            b')' => {
                self.bump();
                Ok(spanned(Tok::RParen))
            }
            b',' => {
                self.bump();
                Ok(spanned(Tok::Comma))
            }
            b'.' => {
                self.bump();
                Ok(spanned(Tok::Dot))
            }
            b'!' => {
                self.bump();
                Ok(spanned(Tok::Bang))
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Ok(spanned(Tok::Arrow))
                } else {
                    Err(self.err("expected `:-`"))
                }
            }
            b'"' => {
                self.bump();
                // Accumulate raw bytes and decode once, so multi-byte UTF-8
                // sequences survive the byte-oriented lexer.
                let mut bytes = Vec::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => bytes.push(b'\n'),
                            Some(b't') => bytes.push(b'\t'),
                            Some(b'r') => bytes.push(b'\r'),
                            Some(c @ (b'"' | b'\\')) => bytes.push(c),
                            Some(b'u') => {
                                let c = self.lex_unicode_escape()?;
                                let mut utf8 = [0u8; 4];
                                bytes.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
                            }
                            _ => return Err(self.err("invalid escape in string literal")),
                        },
                        Some(c) => bytes.push(c),
                        None => return Err(self.err("unterminated string literal")),
                    }
                }
                let s = String::from_utf8(bytes)
                    .map_err(|_| self.err("invalid UTF-8 in string literal"))?;
                Ok(spanned(Tok::Str(s)))
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.bump();
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                text.parse::<i64>()
                    .map(|i| spanned(Tok::Int(i)))
                    .map_err(|_| self.err(format!("invalid integer `{text}`")))
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_owned();
                if text == "not" {
                    Ok(spanned(Tok::Bang))
                } else if c.is_ascii_uppercase() || c == b'_' {
                    Ok(spanned(Tok::Var(text)))
                } else {
                    Ok(spanned(Tok::Ident(text)))
                }
            }
            c => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Spanned,
    fresh_var: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>, ParseError> {
        let mut lexer = Lexer::new(src);
        let current = lexer.next_token()?;
        Ok(Parser { lexer, current, fresh_var: 0 })
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.current.line, col: self.current.col, msg: msg.into() }
    }

    fn advance(&mut self) -> Result<Spanned, ParseError> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.current, next))
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.current.tok == tok {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.current.tok)))
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        let t = match &self.current.tok {
            Tok::Ident(name) => Term::sym(name),
            Tok::Str(s) => Term::sym(s),
            Tok::Int(i) => Term::int(*i),
            Tok::Var(name) => {
                if name == "_" {
                    // Anonymous variables get fresh names so two `_` in the
                    // same rule never unify with each other.
                    self.fresh_var += 1;
                    Term::var(&format!("_anon{}", self.fresh_var))
                } else {
                    Term::var(name)
                }
            }
            other => return Err(self.err(format!("expected a term, found {other:?}"))),
        };
        self.advance()?;
        Ok(t)
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let rel = match &self.current.tok {
            Tok::Ident(name) => name.clone(),
            // A quoted relation name: how symbols that would not re-lex as
            // identifiers (spaces, punctuation, `not`) round-trip.
            Tok::Str(name) => name.clone(),
            other => return Err(self.err(format!("expected a relation name, found {other:?}"))),
        };
        self.advance()?;
        let mut terms = Vec::new();
        if self.current.tok == Tok::LParen {
            self.advance()?;
            if self.current.tok != Tok::RParen {
                terms.push(self.parse_term()?);
                while self.current.tok == Tok::Comma {
                    self.advance()?;
                    terms.push(self.parse_term()?);
                }
            }
            self.expect(Tok::RParen, "`)`")?;
        }
        Ok(Atom::new(rel.as_str(), terms))
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        if self.current.tok == Tok::Bang {
            self.advance()?;
            Ok(Literal::neg(self.parse_atom()?))
        } else {
            Ok(Literal::pos(self.parse_atom()?))
        }
    }

    fn parse_clause(&mut self) -> Result<Rule, ParseError> {
        let head = self.parse_atom()?;
        let mut body = Vec::new();
        if self.current.tok == Tok::Arrow {
            self.advance()?;
            body.push(self.parse_literal()?);
            while self.current.tok == Tok::Comma {
                self.advance()?;
                body.push(self.parse_literal()?);
            }
        }
        self.expect(Tok::Dot, "`.`")?;
        Ok(Rule::new_unchecked(head, body))
    }

    fn at_eof(&self) -> bool {
        self.current.tok == Tok::Eof
    }
}

/// Parses a full program. See the module docs for the grammar.
pub fn parse_program(src: &str) -> Result<Program, DatalogError> {
    let mut parser = Parser::new(src)?;
    let mut program = Program::new();
    while !parser.at_eof() {
        let clause = parser.parse_clause()?;
        program.add_rule(clause)?;
    }
    Ok(program)
}

/// Parses a single rule (or fact clause).
pub fn parse_rule(src: &str) -> Result<Rule, DatalogError> {
    let mut parser = Parser::new(src)?;
    let clause = parser.parse_clause()?;
    if !parser.at_eof() {
        return Err(parser.err("trailing input after rule").into());
    }
    clause.check_safety()?;
    Ok(clause)
}

/// Parses a comma-separated literal list such as `p(X), !q(X)` (trailing
/// `.` optional) — the body syntax used by queries and constraints.
pub fn parse_body(src: &str) -> Result<Vec<crate::literal::Literal>, ParseError> {
    let mut parser = Parser::new(src)?;
    let mut body = vec![parser.parse_literal()?];
    while parser.current.tok == Tok::Comma {
        parser.advance()?;
        body.push(parser.parse_literal()?);
    }
    if parser.current.tok == Tok::Dot {
        parser.advance()?;
    }
    if !parser.at_eof() {
        return Err(parser.err("trailing input after literal list"));
    }
    Ok(body)
}

/// Parses a `.`-separated list of ground facts (`p(a). q(1, 2).`, final `.`
/// optional).
///
/// Unlike naive splitting on `.`, this goes through the lexer, so quoted
/// symbols containing dots or any other parser-significant characters are
/// handled correctly.
pub fn parse_fact_list(src: &str) -> Result<Vec<Fact>, ParseError> {
    let mut parser = Parser::new(src)?;
    let mut out = Vec::new();
    while !parser.at_eof() {
        let atom = parser.parse_atom()?;
        let fact = atom.to_fact().ok_or_else(|| parser.err("fact must be ground"))?;
        out.push(fact);
        if parser.current.tok == Tok::Dot {
            parser.advance()?;
        } else if !parser.at_eof() {
            return Err(parser.err("expected `.` between facts"));
        }
    }
    Ok(out)
}

/// Parses a single ground fact such as `edge(a, 3)` (trailing `.` optional).
pub fn parse_fact(src: &str) -> Result<Fact, ParseError> {
    let mut parser = Parser::new(src)?;
    let atom = parser.parse_atom()?;
    if parser.current.tok == Tok::Dot {
        parser.advance()?;
    }
    if !parser.at_eof() {
        return Err(parser.err("trailing input after fact"));
    }
    atom.to_fact().ok_or_else(|| parser.err("fact must be ground"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;
    use crate::term::Value;

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_program(
            "% a comment
             edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z). // another comment
             isolated(X) :- node(X), !path(X, X).",
        )
        .unwrap();
        assert_eq!(p.num_facts(), 2);
        assert_eq!(p.num_rules(), 3);
    }

    #[test]
    fn parses_not_keyword_as_negation() {
        let r = parse_rule("p(X) :- q(X), not r(X).").unwrap();
        assert_eq!(r.to_string(), "p(X) :- q(X), !r(X).");
    }

    #[test]
    fn parses_zero_arity_atoms() {
        let p = parse_program("a. q :- !p. p :- a.").unwrap();
        assert_eq!(p.num_facts(), 1);
        assert_eq!(p.num_rules(), 2);
        assert!(p.is_asserted(&Fact::prop("a")));
    }

    #[test]
    fn parses_integers_and_strings() {
        let f = parse_fact("t(-5, \"hello world\", 42)").unwrap();
        assert_eq!(
            f,
            Fact::new("t", vec![Value::int(-5), Value::sym("hello world"), Value::int(42)])
        );
    }

    #[test]
    fn string_escapes() {
        let f = parse_fact(r#"t("a\"b\\c\nd")"#).unwrap();
        assert_eq!(f.args[0], Value::sym("a\"b\\c\nd"));
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let r = parse_rule("p(X) :- q(X, _), r(X, _).").unwrap();
        let vars = r.vars();
        // X plus two distinct anonymous variables.
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn rejects_unsafe_rule() {
        let err = parse_rule("p(X) :- !q(X).").unwrap_err();
        assert!(matches!(err, DatalogError::Safety(_)));
    }

    #[test]
    fn rejects_non_ground_fact() {
        assert!(parse_fact("p(X)").is_err());
    }

    #[test]
    fn reports_position_of_syntax_errors() {
        let err = parse_program("edge(a, b)\npath(X) :- edge(X, _).").unwrap_err();
        let DatalogError::Parse(e) = err else { panic!("expected parse error") };
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_stray_tokens() {
        assert!(parse_program("p(a) q(b).").is_err());
        assert!(parse_rule("p(a). q(b).").is_err());
        assert!(parse_fact("p(a) extra").is_err());
    }

    #[test]
    fn rejects_bad_arrow() {
        let err = parse_program("p(X) : q(X).").unwrap_err();
        assert!(err.to_string().contains(":-"));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(parse_fact("p(\"abc").is_err());
    }

    #[test]
    fn variables_require_uppercase_or_underscore() {
        let r = parse_rule("p(X) :- q(X, lower).").unwrap();
        // `lower` is a constant, not a variable.
        assert_eq!(r.vars(), vec![Symbol::new("X")]);
    }

    #[test]
    fn quoted_display_round_trips() {
        let f = Fact::new("p", vec![Value::sym("needs quoting")]);
        let reparsed = parse_fact(&f.to_string()).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn hostile_symbols_round_trip() {
        // Whitespace, parser-significant characters, escapes, keywords,
        // unicode, control characters — in constants AND relation names.
        let names = [
            "a b",
            "a.b",
            "a,b",
            "a(b)",
            "a\"b",
            "a\\b",
            "a\nb",
            "a\tb",
            "a\rb",
            "not",
            "Not lower",
            "_under",
            "7start",
            "",
            "héllo wörld",
            "日本語",
            "a\u{1}b",
            ":-",
            "%cmt",
            "// slash",
            "!bang",
        ];
        for rel in &names {
            for arg in &names {
                let f = Fact::new(*rel, vec![Value::sym(arg), Value::int(-3)]);
                let text = f.to_string();
                let reparsed = parse_fact(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
                assert_eq!(f, reparsed, "`{text}`");
            }
        }
    }

    #[test]
    fn unicode_escape_forms() {
        assert_eq!(parse_fact("p(\"\\u{48}\\u{69}\")").unwrap().args[0], Value::sym("Hi"));
        assert!(parse_fact("p(\"\\u{}\")").is_err());
        assert!(parse_fact("p(\"\\u{d800}\")").is_err(), "surrogates rejected");
        assert!(parse_fact("p(\"\\uXX\")").is_err());
    }

    #[test]
    fn quoted_relation_names_parse_everywhere() {
        let p =
            parse_program("\"rel name\"(a). p(X) :- \"rel name\"(X), !\"other.rel\"(X).").unwrap();
        assert_eq!(p.num_facts(), 1);
        assert_eq!(p.num_rules(), 1);
        // Rule display round-trips through the quoted form.
        let (_, r) = p.rules().next().unwrap();
        assert_eq!(parse_rule(&r.to_string()).unwrap(), *r);
    }

    #[test]
    fn fact_list_respects_quoted_dots() {
        let facts = parse_fact_list("p(\"a.b\"). \"q.r\"(1). s.").unwrap();
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[0].args[0], Value::sym("a.b"));
        assert_eq!(facts[1].rel, Symbol::new("q.r"));
        // Missing separator is an error; trailing dot optional.
        assert!(parse_fact_list("p(a) q(b)").is_err());
        assert_eq!(parse_fact_list("p(a). q(b)").unwrap().len(), 2);
        assert!(parse_fact_list("p(X).").is_err(), "non-ground rejected");
        assert!(parse_fact_list("").unwrap().is_empty());
    }

    #[test]
    fn empty_program_parses() {
        let p = parse_program("  % nothing here\n").unwrap();
        assert_eq!(p.num_facts(), 0);
        assert_eq!(p.num_rules(), 0);
    }

    #[test]
    fn parenthesised_empty_argument_list() {
        let f = parse_fact("p()").unwrap();
        assert_eq!(f, Fact::prop("p"));
    }
}
