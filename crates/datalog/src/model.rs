//! The standard model `M(P)` of a stratified program (paper §2).
//!
//! Given a stratification `P = P_1 ∪ … ∪ P_n`,
//!
//! ```text
//! M_1 = SAT(P_1, ∅),   M_i = SAT(P_i, M_{i-1}),   M(P) = M_n
//! ```
//!
//! By the theorem of Apt, Blair and Walker recalled in §2, `M(P)` does not
//! depend on the chosen stratification, is a minimal supported model, and is
//! a model of Clark's completion. The property tests in this crate and in
//! `strata-core` check stratification-independence, minimality, and
//! supportedness directly.

use crate::atom::Fact;
use crate::error::{DatalogError, StratificationError};
use crate::eval::plan::{compile_rules, CompiledRule};
use crate::eval::{naive, seminaive, DerivationSink, NewFactSink, NullNewFact, NullSink};
use crate::graph::{DepGraph, Stratification};
use crate::program::Program;
use crate::storage::Database;

/// Which stratification to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StratKind {
    /// Fewest strata: each relation at the smallest legal level.
    ByLevels,
    /// One stratum per strongly connected component (the paper's *maximal*
    /// stratification).
    Maximal,
}

/// A program analyzed for evaluation: dependency graph, stratification, and
/// rules/facts grouped by stratum.
///
/// Rules are stored **compiled** ([`CompiledRule`]): every
/// `(rule, delta_position)` matching plan is built once here, at analysis
/// time, and reused by each saturation round of every engine that holds the
/// `Strata`.
#[derive(Clone, Debug)]
pub struct Strata {
    graph: DepGraph,
    strat: Stratification,
    rules_by_stratum: Vec<Vec<CompiledRule>>,
    facts_by_stratum: Vec<Vec<Fact>>,
}

impl Strata {
    /// Analyzes `program`; fails if it is not stratified.
    pub fn build(program: &Program, kind: StratKind) -> Result<Strata, StratificationError> {
        Self::build_with(program, kind, crate::graph::RelIndex::build(program))
    }

    /// Analyzes `program` over a caller-supplied relation index (which must
    /// cover every relation of the program; extra relations are fine and
    /// land in stratum 0 as isolated nodes).
    pub fn build_with(
        program: &Program,
        kind: StratKind,
        index: crate::graph::RelIndex,
    ) -> Result<Strata, StratificationError> {
        let graph = DepGraph::build_with(program, index);
        let strat = match kind {
            StratKind::ByLevels => Stratification::by_levels(&graph)?,
            StratKind::Maximal => Stratification::maximal(&graph)?,
        };
        let n = strat.num_strata();
        let mut rules_by_stratum = vec![Vec::new(); n];
        let mut facts_by_stratum = vec![Vec::new(); n];
        let ix = graph.rel_index();
        for (id, rule) in program.rules() {
            let s = strat.stratum_of(ix.of(rule.head.rel));
            rules_by_stratum[s].push(CompiledRule::compile(id, rule.clone()));
        }
        for fact in program.facts() {
            let s = strat.stratum_of(ix.of(fact.rel));
            facts_by_stratum[s].push(fact.clone());
        }
        Ok(Strata { graph, strat, rules_by_stratum, facts_by_stratum })
    }

    /// The dependency graph.
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// The stratification.
    pub fn stratification(&self) -> &Stratification {
        &self.strat
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strat.num_strata()
    }

    /// Compiled rules of stratum `i` (rules live in the stratum of their
    /// head).
    pub fn rules_of(&self, i: usize) -> &[CompiledRule] {
        &self.rules_by_stratum[i]
    }

    /// Asserted facts of stratum `i` (facts live in the stratum of their
    /// relation).
    pub fn facts_of(&self, i: usize) -> &[Fact] {
        &self.facts_by_stratum[i]
    }

    /// The stratum of a relation, by symbol.
    pub fn stratum_of_rel(&self, rel: crate::symbol::Symbol) -> Option<usize> {
        self.graph.rel_index().get(rel).map(|i| self.strat.stratum_of(i))
    }

    /// Records a fact assertion in the per-stratum grouping. Fact updates do
    /// not change the stratification, so incremental engines keep a `Strata`
    /// across them — but re-saturation re-injects asserted facts from this
    /// grouping, which must therefore follow the live program.
    ///
    /// # Panics
    /// If the fact's relation is unknown to the stratification (callers
    /// rebuild the analysis first when a fact introduces a new relation).
    pub fn note_fact_asserted(&mut self, f: Fact) {
        let s = self.stratum_of_rel(f.rel).expect("relation must be stratified");
        self.facts_by_stratum[s].push(f);
    }

    /// Inverse of [`Strata::note_fact_asserted`]; no-op if absent.
    pub fn note_fact_retracted(&mut self, f: &Fact) {
        let Some(s) = self.stratum_of_rel(f.rel) else { return };
        if let Some(i) = self.facts_by_stratum[s].iter().position(|g| g == f) {
            self.facts_by_stratum[s].swap_remove(i);
        }
    }
}

/// Computes `M(P)` into `db` (which must start empty), delta-driven,
/// reporting each new fact and its deriving rule to `sink`. Asserted facts
/// are injected at the start of their stratum and **not** reported.
pub fn construct_seminaive<S: NewFactSink>(strata: &Strata, db: &mut Database, sink: &mut S) {
    let mut stats = seminaive::DeltaStats::default();
    for i in 0..strata.num_strata() {
        for f in strata.facts_of(i) {
            db.insert(f.clone());
        }
        seminaive::saturate(db, strata.rules_of(i), sink, &mut stats);
    }
}

/// Computes `M(P)` into `db` naively, reporting **every derivation** to
/// `sink` (as the dynamic support constructions of §4.2/§4.3 require).
pub fn construct_naive<S: DerivationSink>(strata: &Strata, db: &mut Database, sink: &mut S) {
    let mut stats = naive::SaturationStats::default();
    for i in 0..strata.num_strata() {
        for f in strata.facts_of(i) {
            db.insert(f.clone());
        }
        naive::saturate(db, strata.rules_of(i), sink, &mut stats);
    }
}

/// A computed standard model, bundling the database with its analysis.
#[derive(Clone, Debug)]
pub struct StandardModel {
    db: Database,
    strata: Strata,
}

impl StandardModel {
    /// Computes `M(P)` with the by-levels stratification and the
    /// delta-driven engine.
    pub fn compute(program: &Program) -> Result<StandardModel, DatalogError> {
        Self::compute_with(program, StratKind::ByLevels)
    }

    /// Computes `M(P)` with a chosen stratification kind.
    pub fn compute_with(program: &Program, kind: StratKind) -> Result<StandardModel, DatalogError> {
        let strata = Strata::build(program, kind)?;
        let mut db = Database::new();
        construct_seminaive(&strata, &mut db, &mut NullNewFact);
        Ok(StandardModel { db, strata })
    }

    /// Computes `M(P)` with the naive engine (for cross-checking).
    pub fn compute_naive(program: &Program) -> Result<StandardModel, DatalogError> {
        let strata = Strata::build(program, StratKind::ByLevels)?;
        let mut db = Database::new();
        construct_naive(&strata, &mut db, &mut NullSink);
        Ok(StandardModel { db, strata })
    }

    /// The model as a database of facts.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The analysis used to compute the model.
    pub fn strata(&self) -> &Strata {
        &self.strata
    }

    /// Consumes the model, returning its database.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// Checks that the model is **supported**: every fact is asserted or is
    /// the head of a rule instance whose body holds in the model (paper §2,
    /// Theorem iii). Used by property tests.
    pub fn is_supported(&self, program: &Program) -> bool {
        let rules = compile_rules(program.rules().map(|(id, r)| (id, r.clone())));
        self.db.iter_facts().all(|f| {
            if program.is_asserted(&f) {
                return true;
            }
            crate::eval::incremental::rederive(&self.db, &rules, &f).is_some()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> StandardModel {
        StandardModel::compute(&Program::parse(src).unwrap()).unwrap()
    }

    /// The paper's §3 PODS example.
    #[test]
    fn pods_example_model() {
        let m = model(
            "submitted(1). submitted(2). submitted(3). submitted(4).
             accepted(2). accepted(4).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        assert!(m.db().contains_parsed("rejected(1)"));
        assert!(m.db().contains_parsed("rejected(3)"));
        assert!(!m.db().contains_parsed("rejected(2)"));
        assert!(!m.db().contains_parsed("rejected(4)"));
        assert_eq!(m.db().len(), 4 + 2 + 2);
    }

    /// The paper's §4.2 Example 2 chain.
    #[test]
    fn negation_chain_model() {
        let m = model("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        let facts: Vec<String> = m.db().sorted_facts().iter().map(ToString::to_string).collect();
        assert_eq!(facts, vec!["p1", "p3"]);
    }

    /// The paper's §5.1 example.
    #[test]
    fn cascade_example_model() {
        let m = model("r :- p. q :- r. q :- !p.");
        let facts: Vec<String> = m.db().sorted_facts().iter().map(ToString::to_string).collect();
        assert_eq!(facts, vec!["q"]);
    }

    #[test]
    fn model_independent_of_stratification() {
        let src = "e(1). e(2). a(X) :- e(X), !b(X). b(X) :- c(X). c(1).
                   d(X) :- a(X). f(X) :- e(X), !d(X).";
        let p = Program::parse(src).unwrap();
        let by_levels = StandardModel::compute_with(&p, StratKind::ByLevels).unwrap();
        let maximal = StandardModel::compute_with(&p, StratKind::Maximal).unwrap();
        assert_eq!(by_levels.db(), maximal.db());
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let src = "e(1, 2). e(2, 3). e(3, 1). n(1). n(2). n(3). n(4).
                   p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).
                   iso(X) :- n(X), !covered(X). covered(X) :- p(X, Y).";
        let p = Program::parse(src).unwrap();
        let a = StandardModel::compute(&p).unwrap();
        let b = StandardModel::compute_naive(&p).unwrap();
        assert_eq!(a.db(), b.db());
        assert!(a.db().contains_parsed("iso(4)"));
        assert!(!a.db().contains_parsed("iso(1)"));
    }

    #[test]
    fn asserted_idb_facts_are_in_the_model() {
        // CONF-style: accepted is defined by a rule AND asserted for l+1.
        let m = model(
            "submitted(1). late(2). accepted(2).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        assert!(m.db().contains_parsed("accepted(1)"));
        assert!(m.db().contains_parsed("accepted(2)"));
    }

    #[test]
    fn model_is_supported() {
        let src = "submitted(1). submitted(2). accepted(2).
                   rejected(X) :- submitted(X), !accepted(X).";
        let p = Program::parse(src).unwrap();
        let m = StandardModel::compute(&p).unwrap();
        assert!(m.is_supported(&p));
    }

    #[test]
    fn model_is_minimal_on_small_program() {
        // Minimality: removing any single fact breaks model-hood (every fact
        // is needed). For this program the model is {s(1), p(1)} and both
        // facts are forced.
        let m = model("s(1). p(X) :- s(X).");
        assert_eq!(m.db().len(), 2);
    }

    #[test]
    fn non_stratified_program_rejected() {
        let p = Program::parse("p(X) :- e(X), !q(X). q(X) :- e(X), !p(X). e(1).").unwrap();
        assert!(StandardModel::compute(&p).is_err());
    }

    #[test]
    fn empty_program_empty_model() {
        let m = model("");
        assert!(m.db().is_empty());
        assert_eq!(m.strata().num_strata(), 0);
    }

    #[test]
    fn deep_stratification() {
        // A 6-deep alternation exercises per-stratum iteration.
        let m = model(
            "e(1).
             a(X) :- e(X), !z0(X).
             b(X) :- e(X), !a(X).
             c(X) :- e(X), !b(X).
             d(X) :- e(X), !c(X).
             f(X) :- e(X), !d(X).",
        );
        assert!(m.db().contains_parsed("a(1)"));
        assert!(!m.db().contains_parsed("b(1)"));
        assert!(m.db().contains_parsed("c(1)"));
        assert!(!m.db().contains_parsed("d(1)"));
        assert!(m.db().contains_parsed("f(1)"));
    }

    #[test]
    fn strata_grouping_is_complete() {
        let p = Program::parse("e(1). p(X) :- e(X). q(X) :- e(X), !p(X). q(9).").unwrap();
        let strata = Strata::build(&p, StratKind::ByLevels).unwrap();
        let total_rules: usize = (0..strata.num_strata()).map(|i| strata.rules_of(i).len()).sum();
        let total_facts: usize = (0..strata.num_strata()).map(|i| strata.facts_of(i).len()).sum();
        assert_eq!(total_rules, p.num_rules());
        assert_eq!(total_facts, p.num_facts());
        // q(9) is asserted for an IDB relation in a higher stratum.
        let q_stratum = strata.stratum_of_rel("q".into()).unwrap();
        assert!(strata.facts_of(q_stratum).contains(&Fact::parse("q(9)").unwrap()));
    }
}
