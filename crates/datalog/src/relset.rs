//! Dense bitsets over relation indices.
//!
//! The maintenance strategies manipulate many small sets of relations
//! (supports, `Pos`/`Neg` dependency sets, `INC`/`DEC` accumulators). With
//! relations mapped to dense indices by [`crate::graph::RelIndex`], a bitset
//! makes union, intersection-emptiness, and subset tests word-parallel.

use std::fmt;

/// A fixed-universe bitset of relation indices.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct RelSet {
    words: Vec<u64>,
}

impl RelSet {
    /// An empty set over a universe of `universe` relations.
    pub fn empty(universe: usize) -> RelSet {
        RelSet { words: vec![0; universe.div_ceil(64)] }
    }

    /// Builds a set from indices.
    pub fn from_indices(universe: usize, indices: impl IntoIterator<Item = u32>) -> RelSet {
        let mut s = RelSet::empty(universe);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Inserts an index. Returns `true` if it was absent.
    pub fn insert(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        assert!(w < self.words.len(), "relation index {i} out of universe");
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes an index. Returns `true` if it was present.
    pub fn remove(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        if w >= self.words.len() {
            return false;
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    pub fn contains(&self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &RelSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether the two sets share any element.
    pub fn intersects(&self, other: &RelSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &RelSet) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Whether `self ⊂ other` strictly.
    pub fn is_proper_subset(&self, other: &RelSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Iterates over the member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }

    /// Approximate heap size in bytes (for bookkeeping statistics).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// A deterministic total order: by cardinality, then by zero-padded word
    /// content. Used to keep capped support sets convergent (smaller-first
    /// eviction must be stable across re-derivations).
    pub fn canonical_cmp(&self, other: &RelSet) -> std::cmp::Ordering {
        self.len().cmp(&other.len()).then_with(|| {
            let n = self.words.len().max(other.words.len());
            for i in 0..n {
                let a = self.words.get(i).copied().unwrap_or(0);
                let b = other.words.get(i).copied().unwrap_or(0);
                match a.cmp(&b) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        })
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for RelSet {
    /// Collects indices, growing the universe as needed.
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> RelSet {
        let indices: Vec<u32> = iter.into_iter().collect();
        let universe = indices.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
        RelSet::from_indices(universe, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RelSet::empty(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_intersection() {
        let a = RelSet::from_indices(128, [1, 2, 70]);
        let b = RelSet::from_indices(128, [2, 3]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, RelSet::from_indices(128, [1, 2, 3, 70]));
        assert!(a.intersects(&b));
        let c = RelSet::from_indices(128, [4, 100]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn subset_tests() {
        let a = RelSet::from_indices(128, [1, 2]);
        let b = RelSet::from_indices(128, [1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn subset_across_different_word_counts() {
        let small = RelSet::from_indices(10, [1]);
        let big = RelSet::from_indices(200, [1, 150]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }

    #[test]
    fn iteration_order() {
        let s = RelSet::from_indices(200, [150, 3, 64, 0]);
        let v: Vec<u32> = s.iter().collect();
        assert_eq!(v, vec![0, 3, 64, 150]);
    }

    #[test]
    fn empty_set() {
        let s = RelSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(5));
    }

    #[test]
    fn from_iterator_grows_universe() {
        let s: RelSet = [5u32, 300].into_iter().collect();
        assert!(s.contains(5) && s.contains(300));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        let mut s = RelSet::empty(10);
        s.insert(64);
    }

    #[test]
    fn canonical_cmp_orders_by_len_then_content() {
        use std::cmp::Ordering;
        let a = RelSet::from_indices(128, [1]);
        let b = RelSet::from_indices(128, [1, 2]);
        let c = RelSet::from_indices(128, [3]);
        assert_eq!(a.canonical_cmp(&b), Ordering::Less);
        assert_eq!(b.canonical_cmp(&a), Ordering::Greater);
        assert_ne!(a.canonical_cmp(&c), Ordering::Equal);
        assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        // Padding: same set over different universes compares equal.
        let wide = RelSet::from_indices(300, [1]);
        assert_eq!(a.canonical_cmp(&wide), Ordering::Equal);
    }
}
