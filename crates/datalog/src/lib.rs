//! # strata-datalog
//!
//! A function-free Datalog engine with **stratified negation**, built as the
//! substrate for reproducing *Apt & Pugin, "Maintenance of Stratified
//! Databases Viewed as a Belief Revision System"* (PODS 1987).
//!
//! The crate provides everything the paper's maintenance layer depends on:
//!
//! * a textual language and [`parser`] for programs with negative hypotheses
//!   (`rejected(X) :- submitted(X), !accepted(X).`),
//! * the dependency graph `D_P` with positive/negative arcs ([`graph`]),
//!   the stratification test (no cycle through a negative arc) and both the
//!   *by-levels* and *maximal* stratifications,
//! * static `Pos(p)` / `Neg(p)` dependency sets — relations reachable through
//!   an even / odd number of negations ([`deps`]),
//! * a [`storage::TupleStore`] abstraction with the in-memory, per-column
//!   indexed [`Database`] as default implementation ([`storage`]), plus the
//!   binary codec durable backends serialize through ([`wire`]),
//! * bottom-up evaluation: naive saturation, the delta-driven (semi-naive)
//!   mechanism of the paper's §5.2, and a DRed-style incremental stratum
//!   saturation used by the maintenance engines ([`eval`]),
//! * the iterated-fixpoint construction of the standard model `M(P)`
//!   ([`model`]).
//!
//! ## Quick example
//!
//! ```
//! use strata_datalog::{Program, model::StandardModel};
//!
//! let program = Program::parse(
//!     "submitted(a). submitted(b). accepted(a).
//!      rejected(X) :- submitted(X), !accepted(X).",
//! ).unwrap();
//! let model = StandardModel::compute(&program).unwrap();
//! assert!(model.db().contains_parsed("rejected(b)"));
//! assert!(!model.db().contains_parsed("rejected(a)"));
//! ```

pub mod atom;
pub mod deps;
pub mod error;
pub mod eval;
pub mod graph;
pub mod ground;
pub mod literal;
pub mod model;
pub mod parser;
pub mod program;
pub mod query;
pub mod relset;
pub mod rule;
pub mod storage;
pub mod symbol;
pub mod term;
pub mod wire;

pub use atom::{Atom, Fact};
pub use error::{DatalogError, ParseError, SafetyError, StratificationError};
pub use eval::par::Parallelism;
pub use graph::{DepGraph, RelIndex, Stratification};
pub use literal::Literal;
pub use program::{Program, RuleId};
pub use query::Query;
pub use relset::RelSet;
pub use rule::Rule;
pub use storage::{Database, ModelSnapshot, RelSource, RelStamp, Relation, TupleStore};
pub use symbol::Symbol;
pub use term::{Term, Value};
