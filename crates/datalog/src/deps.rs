//! Static `Pos` / `Neg` dependency sets (paper §4.1).
//!
//! `Pos(p)` is the set of relations `q` reachable from `p` in the dependency
//! graph through an **even** number of negative arcs (including `p` itself,
//! via the empty path); `Neg(p)` uses an **odd** number. The sets need not be
//! disjoint. Intuition: an *increase* of `q ∈ Neg(p)` or a *decrease* of
//! `q ∈ Pos(p)` can decrease `p`'s meaning in the model (the paper's
//! Lemma 1).

use crate::graph::DepGraph;
use crate::relset::RelSet;

/// Precomputed static dependency sets for every relation of a program.
#[derive(Clone, Debug)]
pub struct StaticDeps {
    /// `pos[p]` = relation indices reachable from `p` with even parity.
    pos: Vec<RelSet>,
    /// `neg[p]` = relation indices reachable from `p` with odd parity.
    neg: Vec<RelSet>,
    /// `pos_inv[q]` = relations `r` with `q ∈ Pos(r)`.
    pos_inv: Vec<RelSet>,
    /// `neg_inv[q]` = relations `r` with `q ∈ Neg(r)`.
    neg_inv: Vec<RelSet>,
}

impl StaticDeps {
    /// Computes all four set families with a BFS over the parity product
    /// graph `(relation, parity)` — `O(R · E)` overall.
    pub fn compute(graph: &DepGraph) -> StaticDeps {
        let n = graph.num_rels();
        let mut pos = vec![RelSet::empty(n); n];
        let mut neg = vec![RelSet::empty(n); n];
        let mut queue = std::collections::VecDeque::new();
        for p in 0..n as u32 {
            // seen[(r, parity)] for this source; parity 0 = even.
            let mut seen_even = RelSet::empty(n);
            let mut seen_odd = RelSet::empty(n);
            seen_even.insert(p);
            queue.clear();
            queue.push_back((p, false));
            while let Some((r, odd)) = queue.pop_front() {
                for (q, sign) in graph.arcs_from(r) {
                    if sign.positive {
                        let seen = if odd { &mut seen_odd } else { &mut seen_even };
                        if seen.insert(q) {
                            queue.push_back((q, odd));
                        }
                    }
                    if sign.negative {
                        let seen = if odd { &mut seen_even } else { &mut seen_odd };
                        if seen.insert(q) {
                            queue.push_back((q, !odd));
                        }
                    }
                }
            }
            pos[p as usize] = seen_even;
            neg[p as usize] = seen_odd;
        }
        let mut pos_inv = vec![RelSet::empty(n); n];
        let mut neg_inv = vec![RelSet::empty(n); n];
        for r in 0..n as u32 {
            for q in pos[r as usize].iter() {
                pos_inv[q as usize].insert(r);
            }
            for q in neg[r as usize].iter() {
                neg_inv[q as usize].insert(r);
            }
        }
        StaticDeps { pos, neg, pos_inv, neg_inv }
    }

    /// `Pos(p)`: relations `p` depends on through an even number of
    /// negations (always contains `p`).
    pub fn pos(&self, p: u32) -> &RelSet {
        &self.pos[p as usize]
    }

    /// `Neg(p)`: relations `p` depends on through an odd number of negations.
    pub fn neg(&self, p: u32) -> &RelSet {
        &self.neg[p as usize]
    }

    /// Relations `r` with `q ∈ Pos(r)` — those whose meaning can shrink when
    /// `q` shrinks.
    pub fn pos_inverse(&self, q: u32) -> &RelSet {
        &self.pos_inv[q as usize]
    }

    /// Relations `r` with `q ∈ Neg(r)` — those whose meaning can shrink when
    /// `q` grows.
    pub fn neg_inverse(&self, q: u32) -> &RelSet {
        &self.neg_inv[q as usize]
    }

    /// Approximate heap usage in bytes, for bookkeeping statistics.
    pub fn heap_bytes(&self) -> usize {
        self.pos
            .iter()
            .chain(&self.neg)
            .chain(&self.pos_inv)
            .chain(&self.neg_inv)
            .map(RelSet::heap_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn deps(src: &str) -> (DepGraph, StaticDeps) {
        let p = Program::parse(src).unwrap();
        let g = DepGraph::build(&p);
        let d = StaticDeps::compute(&g);
        (g, d)
    }

    #[test]
    fn pos_always_contains_self() {
        let (g, d) = deps("p(X) :- q(X). q(1).");
        for (i, _) in g.rel_index().iter() {
            assert!(d.pos(i).contains(i));
        }
    }

    #[test]
    fn single_negation_lands_in_neg() {
        let (g, d) = deps("rejected(X) :- submitted(X), !accepted(X). submitted(1).");
        let ix = g.rel_index();
        let (rej, acc, sub) =
            (ix.of("rejected".into()), ix.of("accepted".into()), ix.of("submitted".into()));
        assert!(d.neg(rej).contains(acc));
        assert!(d.pos(rej).contains(sub));
        assert!(!d.pos(rej).contains(acc));
        assert!(!d.neg(rej).contains(sub));
    }

    #[test]
    fn parity_chain_alternates() {
        // p3 -!-> p2 -!-> p1 -!-> p0 (the paper's Example 2 chain).
        let (g, d) = deps("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        let ix = g.rel_index();
        let p = |n: &str| ix.of(n.into());
        // From p3: p2 odd, p1 even, p0 odd.
        assert!(d.neg(p("p3")).contains(p("p2")));
        assert!(d.pos(p("p3")).contains(p("p1")));
        assert!(d.neg(p("p3")).contains(p("p0")));
        // From p2: p1 odd, p0 even.
        assert!(d.neg(p("p2")).contains(p("p1")));
        assert!(d.pos(p("p2")).contains(p("p0")));
    }

    #[test]
    fn pos_and_neg_can_overlap() {
        // q reachable positively (via a) and negatively (directly).
        let (g, d) = deps("p(X) :- a(X), !q(X). a(X) :- q(X).");
        let ix = g.rel_index();
        let (p_, q_) = (ix.of("p".into()), ix.of("q".into()));
        assert!(d.pos(p_).contains(q_));
        assert!(d.neg(p_).contains(q_));
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (g, d) =
            deps("p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z). u(X) :- n(X), !p(X, X).");
        let ix = g.rel_index();
        let (u_, p_, e_, n_) =
            (ix.of("u".into()), ix.of("p".into()), ix.of("e".into()), ix.of("n".into()));
        assert!(d.neg(u_).contains(p_));
        assert!(d.neg(u_).contains(e_));
        assert!(d.pos(u_).contains(n_));
        assert!(d.pos(p_).contains(e_));
    }

    #[test]
    fn inverse_sets_are_consistent() {
        let (g, d) =
            deps("a(X) :- b(X), !c(X). b(X) :- d(X). c(X) :- e(X), !f(X). d(1). e(1). f(1).");
        for (r, _) in g.rel_index().iter() {
            for q in d.pos(r).iter() {
                assert!(d.pos_inverse(q).contains(r));
            }
            for q in d.neg(r).iter() {
                assert!(d.neg_inverse(q).contains(r));
            }
        }
        for (q, _) in g.rel_index().iter() {
            for r in d.pos_inverse(q).iter() {
                assert!(d.pos(r).contains(q));
            }
            for r in d.neg_inverse(q).iter() {
                assert!(d.neg(r).contains(q));
            }
        }
    }

    #[test]
    fn double_negation_is_positive_dependency() {
        let (g, d) = deps("a(X) :- s(X), !b(X). b(X) :- s(X), !c(X). s(1). c(1).");
        let ix = g.rel_index();
        let (a_, c_) = (ix.of("a".into()), ix.of("c".into()));
        assert!(d.pos(a_).contains(c_), "c is two negations below a");
        assert!(!d.neg(a_).contains(c_));
    }

    #[test]
    fn edb_relations_have_trivial_deps() {
        let (g, d) = deps("p(X) :- e(X). e(1).");
        let ix = g.rel_index();
        let e_ = ix.of("e".into());
        assert_eq!(d.pos(e_).len(), 1); // just itself
        assert!(d.neg(e_).is_empty());
    }
}
