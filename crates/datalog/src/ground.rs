//! Grounding: fully instantiated rules over the active domain.
//!
//! The paper works with "fully instantiated clauses" in two places: the
//! backchaining interpreter of §2 (Theorem vi) and the comparison with truth
//! maintenance systems, where each ground rule instance becomes one
//! justification. This module enumerates those instances.
//!
//! Grounding is exponential in the number of variables per rule
//! (`|domain|^k` instances), so it is guarded by an instance budget. The
//! bottom-up engines in [`crate::eval`] never ground; only the TMS bridge,
//! the backchainer, and tests do.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::atom::{Atom, Fact};
use crate::program::Program;
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::{Term, Value};

/// A fully instantiated rule: ground head, ground positive and negative
/// body atoms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundRule {
    /// The instantiated conclusion.
    pub head: Fact,
    /// The instantiated positive hypotheses.
    pub pos: Vec<Fact>,
    /// The instantiated negative hypotheses.
    pub neg: Vec<Fact>,
}

impl std::fmt::Display for GroundRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.pos.is_empty() || !self.neg.is_empty() {
            f.write_str(" :- ")?;
            let mut first = true;
            for a in &self.pos {
                if !first {
                    f.write_str(", ")?;
                }
                first = false;
                write!(f, "{a}")?;
            }
            for a in &self.neg {
                if !first {
                    f.write_str(", ")?;
                }
                first = false;
                write!(f, "!{a}")?;
            }
        }
        f.write_str(".")
    }
}

/// Grounding failed because the instance budget was exceeded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundingBudgetExceeded {
    /// The configured budget.
    pub budget: usize,
}

impl std::fmt::Display for GroundingBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grounding exceeded the budget of {} rule instances", self.budget)
    }
}

impl std::error::Error for GroundingBudgetExceeded {}

/// The active domain of a program: every constant appearing in its facts and
/// rules, sorted for determinism.
pub fn active_domain(program: &Program) -> Vec<Value> {
    let mut seen = FxHashSet::default();
    let mut domain = Vec::new();
    let mut visit = |v: Value| {
        if seen.insert(v) {
            domain.push(v);
        }
    };
    for f in program.facts() {
        for &v in f.args.iter() {
            visit(v);
        }
    }
    for (_, rule) in program.rules() {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
            for t in &atom.terms {
                if let Some(v) = t.as_const() {
                    visit(v);
                }
            }
        }
    }
    domain.sort();
    domain
}

/// Grounds every rule of `program` over its active domain, with a budget on
/// the total number of instances produced (grounding is `|domain|^k` per
/// rule with `k` variables).
///
/// Asserted facts are *not* included; callers treat them as premises.
pub fn ground_program(
    program: &Program,
    budget: usize,
) -> Result<Vec<GroundRule>, GroundingBudgetExceeded> {
    let domain = active_domain(program);
    let mut out = Vec::new();
    for (_, rule) in program.rules() {
        ground_rule_into(rule, &domain, budget, &mut out)?;
    }
    Ok(out)
}

/// Grounds a single rule over an explicit domain, appending to `out`.
fn ground_rule_into(
    rule: &Rule,
    domain: &[Value],
    budget: usize,
    out: &mut Vec<GroundRule>,
) -> Result<(), GroundingBudgetExceeded> {
    let vars = rule.vars();
    if vars.is_empty() {
        push_instance(rule, &FxHashMap::default(), out);
        return check_budget(out.len(), budget);
    }
    if domain.is_empty() {
        return Ok(()); // variables but nothing to bind them to
    }
    // Odometer over |domain|^|vars| assignments.
    let mut counters = vec![0usize; vars.len()];
    let mut binding: FxHashMap<Symbol, Value> = vars.iter().map(|&v| (v, domain[0])).collect();
    loop {
        for (i, &v) in vars.iter().enumerate() {
            binding.insert(v, domain[counters[i]]);
        }
        push_instance(rule, &binding, out);
        check_budget(out.len(), budget)?;
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == counters.len() {
                return Ok(());
            }
            counters[i] += 1;
            if counters[i] < domain.len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

fn check_budget(len: usize, budget: usize) -> Result<(), GroundingBudgetExceeded> {
    if len > budget {
        Err(GroundingBudgetExceeded { budget })
    } else {
        Ok(())
    }
}

fn push_instance(rule: &Rule, binding: &FxHashMap<Symbol, Value>, out: &mut Vec<GroundRule>) {
    let head = substitute(&rule.head, binding);
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for lit in &rule.body {
        let f = substitute(&lit.atom, binding);
        if lit.positive {
            pos.push(f);
        } else {
            neg.push(f);
        }
    }
    out.push(GroundRule { head, pos, neg });
}

fn substitute(atom: &Atom, binding: &FxHashMap<Symbol, Value>) -> Fact {
    let args: Box<[Value]> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(v) => *v,
            Term::Var(v) => *binding.get(v).expect("safety guarantees a binding"),
        })
        .collect();
    Fact { rel: atom.rel, args }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_domain_collects_fact_and_rule_constants() {
        let p = Program::parse("e(1). e(a). p(X) :- e(X), !f(b).").unwrap();
        let d = active_domain(&p);
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Value::int(1)));
        assert!(d.contains(&Value::sym("a")));
        assert!(d.contains(&Value::sym("b")));
    }

    #[test]
    fn grounds_unary_rule_over_domain() {
        let p = Program::parse("e(1). e(2). p(X) :- e(X), !q(X).").unwrap();
        let g = ground_program(&p, 1000).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&GroundRule {
            head: Fact::parse("p(1)").unwrap(),
            pos: vec![Fact::parse("e(1)").unwrap()],
            neg: vec![Fact::parse("q(1)").unwrap()],
        }));
    }

    #[test]
    fn grounds_propositional_rule_once() {
        let p = Program::parse("q :- !p.").unwrap();
        let g = ground_program(&p, 10).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].to_string(), "q :- !p.");
    }

    #[test]
    fn two_variable_rule_is_cartesian() {
        let p = Program::parse("e(1). e(2). e(3). r(X, Y) :- e(X), e(Y).").unwrap();
        let g = ground_program(&p, 1000).unwrap();
        assert_eq!(g.len(), 9);
        // All instances are distinct.
        let set: FxHashSet<_> = g.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn budget_is_enforced() {
        let p = Program::parse("e(1). e(2). e(3). r(X, Y, Z) :- e(X), e(Y), e(Z).").unwrap();
        let err = ground_program(&p, 10).unwrap_err();
        assert_eq!(err.budget, 10);
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn variables_without_domain_yield_nothing() {
        let p = Program::parse("p(X) :- e(X).").unwrap();
        assert_eq!(ground_program(&p, 10).unwrap().len(), 0);
    }

    #[test]
    fn rule_constants_stay_fixed() {
        let p = Program::parse("e(1). p(X, c) :- e(X).").unwrap();
        let g = ground_program(&p, 10).unwrap();
        // Domain is {1, c}: X ranges over both.
        assert_eq!(g.len(), 2);
        for inst in &g {
            assert_eq!(inst.head.args[1], Value::sym("c"));
        }
    }

    #[test]
    fn display_round_trip_shape() {
        let p = Program::parse("e(1). p(X) :- e(X), !q(X).").unwrap();
        let g = ground_program(&p, 10).unwrap();
        assert_eq!(g[0].to_string(), "p(1) :- e(1), !q(1).");
    }
}
