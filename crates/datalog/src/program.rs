//! Programs: asserted facts (the extensional part) plus rules (the
//! intensional part).
//!
//! Following the paper, a *stratified database* is a function-free stratified
//! logic program divided into a set of ground atoms and a set of clauses. A
//! relation may have both asserted facts and rules (the paper's CONF example
//! asserts `accepted(l+1)` even though `accepted` is also defined by a rule);
//! deletion of facts is only permitted for *asserted* facts.

use std::fmt;

use rustc_hash::{FxHashMap, FxHashSet};

use crate::atom::Fact;
use crate::error::DatalogError;
use crate::rule::Rule;
use crate::symbol::Symbol;

/// A stable handle to a rule inside a [`Program`].
///
/// Rule ids survive deletions of other rules (the program keeps a slot map),
/// which lets the maintenance layer use rule pointers as supports, as the
/// paper's §5.1 suggests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub(crate) u32);

impl RuleId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r#{}", self.0)
    }
}

/// A deductive database: asserted ground facts plus safe rules.
#[derive(Clone, Default)]
pub struct Program {
    rules: Vec<Option<Rule>>,
    facts: FxHashSet<Fact>,
    arities: FxHashMap<Symbol, usize>,
    live_rules: usize,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Parses a program from source text. Ground unit clauses become
    /// asserted facts; everything else becomes rules.
    ///
    /// ```
    /// use strata_datalog::Program;
    /// let p = Program::parse("edge(a, b). path(X, Y) :- edge(X, Y).").unwrap();
    /// assert_eq!(p.num_facts(), 1);
    /// assert_eq!(p.num_rules(), 1);
    /// ```
    pub fn parse(src: &str) -> Result<Program, DatalogError> {
        crate::parser::parse_program(src)
    }

    fn check_arity(&mut self, rel: Symbol, arity: usize) -> Result<(), DatalogError> {
        match self.arities.get(&rel) {
            Some(&expected) if expected != arity => {
                Err(DatalogError::ArityMismatch { rel, expected, found: arity })
            }
            Some(_) => Ok(()),
            None => {
                self.arities.insert(rel, arity);
                Ok(())
            }
        }
    }

    /// Adds a rule, checking safety and arity consistency.
    ///
    /// Ground unit clauses are routed to the fact store and report no
    /// [`RuleId`]; non-ground unit clauses are unsafe and rejected.
    pub fn add_rule(&mut self, rule: Rule) -> Result<Option<RuleId>, DatalogError> {
        rule.check_safety()?;
        if rule.is_fact_clause() {
            let fact = rule.head.to_fact().expect("ground head");
            self.assert_fact(fact)?;
            return Ok(None);
        }
        self.check_arity(rule.head.rel, rule.head.arity())?;
        for lit in &rule.body {
            self.check_arity(lit.atom.rel, lit.atom.arity())?;
        }
        let id = RuleId(u32::try_from(self.rules.len()).expect("rule table overflow"));
        self.rules.push(Some(rule));
        self.live_rules += 1;
        Ok(Some(id))
    }

    /// Removes a rule by id, returning it. `None` if the slot is empty.
    pub fn remove_rule(&mut self, id: RuleId) -> Option<Rule> {
        let slot = self.rules.get_mut(id.index())?;
        let rule = slot.take();
        if rule.is_some() {
            self.live_rules -= 1;
        }
        rule
    }

    /// Finds the id of a structurally equal live rule.
    pub fn find_rule(&self, rule: &Rule) -> Option<RuleId> {
        self.rules
            .iter()
            .enumerate()
            .find(|(_, r)| r.as_ref() == Some(rule))
            .map(|(i, _)| RuleId(i as u32))
    }

    /// The rule behind an id, if live.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(id.index()).and_then(Option::as_ref)
    }

    /// Iterates over live rules with their ids.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &Rule)> + '_ {
        self.rules.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|r| (RuleId(i as u32), r)))
    }

    /// Live rules whose head is `rel` (the *definition* of `rel`).
    pub fn rules_defining(&self, rel: Symbol) -> impl Iterator<Item = (RuleId, &Rule)> + '_ {
        self.rules().filter(move |(_, r)| r.head.rel == rel)
    }

    /// Asserts a ground fact (a unit clause). Returns `true` if new.
    pub fn assert_fact(&mut self, fact: Fact) -> Result<bool, DatalogError> {
        self.check_arity(fact.rel, fact.arity())?;
        Ok(self.facts.insert(fact))
    }

    /// Retracts an asserted fact. Returns `true` if it was present.
    pub fn retract_fact(&mut self, fact: &Fact) -> bool {
        self.facts.remove(fact)
    }

    /// Whether `fact` is asserted (present as a unit clause).
    pub fn is_asserted(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }

    /// Iterates over the asserted facts.
    pub fn facts(&self) -> impl Iterator<Item = &Fact> + '_ {
        self.facts.iter()
    }

    /// Number of asserted facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Number of live rules.
    pub fn num_rules(&self) -> usize {
        self.live_rules
    }

    /// The recorded arity of a relation, if any part of the program uses it.
    pub fn arity_of(&self, rel: Symbol) -> Option<usize> {
        self.arities.get(&rel).copied()
    }

    /// Records the arity of `rel` without asserting anything, exactly as a
    /// first mention would: a fresh relation is recorded, a known relation
    /// must match. The shard router uses this to seed per-shard programs with
    /// the arity book of the database they were split from, so first-mention
    /// semantics stay global across shards.
    pub fn note_arity(&mut self, rel: Symbol, arity: usize) -> Result<(), DatalogError> {
        self.check_arity(rel, arity)
    }

    /// Iterates over every recorded `(relation, arity)` pair, in no
    /// particular order.
    pub fn arities(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.arities.iter().map(|(&r, &a)| (r, a))
    }

    /// All relations mentioned anywhere in the program, sorted by name.
    pub fn relations(&self) -> Vec<Symbol> {
        let mut rels: Vec<Symbol> = self.arities.keys().copied().collect();
        rels.sort_by_key(|r| r.as_str());
        rels
    }

    /// Whether `rel` is purely extensional: no live rule defines it.
    pub fn is_extensional(&self, rel: Symbol) -> bool {
        !self.rules().any(|(_, r)| r.head.rel == rel)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut facts: Vec<&Fact> = self.facts.iter().collect();
        facts.sort();
        for fact in facts {
            writeln!(f, "{fact}.")?;
        }
        for (_, rule) in self.rules() {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Program({} facts, {} rules)", self.num_facts(), self.num_rules())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Value;

    fn rule(s: &str) -> Rule {
        Rule::parse(s).unwrap()
    }

    #[test]
    fn add_and_remove_rules_keeps_ids_stable() {
        let mut p = Program::new();
        let r1 = p.add_rule(rule("p(X) :- q(X).")).unwrap().unwrap();
        let r2 = p.add_rule(rule("p(X) :- r(X).")).unwrap().unwrap();
        assert_ne!(r1, r2);
        assert_eq!(p.num_rules(), 2);
        let removed = p.remove_rule(r1).unwrap();
        assert_eq!(removed.to_string(), "p(X) :- q(X).");
        assert_eq!(p.num_rules(), 1);
        // r2 still resolves after r1's removal.
        assert_eq!(p.rule(r2).unwrap().to_string(), "p(X) :- r(X).");
        assert!(p.rule(r1).is_none());
        assert!(p.remove_rule(r1).is_none());
    }

    #[test]
    fn ground_unit_clause_becomes_fact() {
        let mut p = Program::new();
        let id = p.add_rule(rule("p(a).")).unwrap();
        assert!(id.is_none());
        assert_eq!(p.num_facts(), 1);
        assert_eq!(p.num_rules(), 0);
        assert!(p.is_asserted(&Fact::new("p", vec![Value::sym("a")])));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = Program::new();
        p.add_rule(rule("p(X) :- q(X).")).unwrap();
        let err = p.add_rule(rule("s(X) :- q(X, X).")).unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
        let err = p.assert_fact(Fact::new("p", vec![Value::int(1), Value::int(2)])).unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn assert_and_retract_facts() {
        let mut p = Program::new();
        let f = Fact::new("e", vec![Value::int(1)]);
        assert!(p.assert_fact(f.clone()).unwrap());
        assert!(!p.assert_fact(f.clone()).unwrap());
        assert!(p.is_asserted(&f));
        assert!(p.retract_fact(&f));
        assert!(!p.retract_fact(&f));
        assert!(!p.is_asserted(&f));
    }

    #[test]
    fn extensional_classification() {
        let mut p = Program::new();
        p.assert_fact(Fact::new("e", vec![Value::int(1)])).unwrap();
        p.add_rule(rule("p(X) :- e(X).")).unwrap();
        assert!(p.is_extensional(Symbol::new("e")));
        assert!(!p.is_extensional(Symbol::new("p")));
        // A relation with both facts and rules is not extensional.
        p.assert_fact(Fact::new("p", vec![Value::int(9)])).unwrap();
        assert!(!p.is_extensional(Symbol::new("p")));
    }

    #[test]
    fn rules_defining_filters_by_head() {
        let mut p = Program::new();
        p.add_rule(rule("p(X) :- q(X).")).unwrap();
        p.add_rule(rule("p(X) :- r(X).")).unwrap();
        p.add_rule(rule("s(X) :- q(X).")).unwrap();
        assert_eq!(p.rules_defining(Symbol::new("p")).count(), 2);
        assert_eq!(p.rules_defining(Symbol::new("s")).count(), 1);
        assert_eq!(p.rules_defining(Symbol::new("q")).count(), 0);
    }

    #[test]
    fn find_rule_by_structure() {
        let mut p = Program::new();
        let id = p.add_rule(rule("p(X) :- q(X).")).unwrap().unwrap();
        assert_eq!(p.find_rule(&rule("p(X) :- q(X).")), Some(id));
        assert_eq!(p.find_rule(&rule("p(X) :- r(X).")), None);
    }

    #[test]
    fn relations_lists_every_mentioned_rel() {
        let mut p = Program::new();
        p.assert_fact(Fact::new("e", vec![Value::int(1)])).unwrap();
        p.add_rule(rule("p(X) :- e(X), !q(X).")).unwrap();
        let rels: Vec<&str> = p.relations().iter().map(|r| r.as_str()).collect();
        assert_eq!(rels, vec!["e", "p", "q"]);
    }

    #[test]
    fn display_round_trips_through_parse() {
        let p = Program::parse("e(1). e(2). p(X) :- e(X), !q(X).").unwrap();
        let q = Program::parse(&p.to_string()).unwrap();
        assert_eq!(p.num_facts(), q.num_facts());
        assert_eq!(p.num_rules(), q.num_rules());
    }
}
