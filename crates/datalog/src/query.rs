//! Conjunctive queries with negation over a database.
//!
//! A query is a rule body — `reachable(X, Y), !blocked(Y)` — evaluated
//! against a (maintained) model; answers are bindings of the query's
//! variables. This is the read side of the paper's *explicit
//! representation*: the model is materialized, so queries are pure joins
//! with no deduction.
//!
//! Safety mirrors rule safety: every variable must occur in a positive
//! literal (otherwise a negative literal could not be grounded).

use std::fmt;

use rustc_hash::FxHashSet;

use crate::atom::Atom;
use crate::error::{DatalogError, SafetyError};
use crate::eval::plan::{CompiledPlan, MatchScratch};
use crate::literal::Literal;
use crate::rule::Rule;
use crate::storage::RelSource;
use crate::symbol::Symbol;
use crate::term::{Term, Value};

/// One answer: the values of the query's variables, in [`Query::vars`]
/// order.
pub type Row = Box<[Value]>;

/// A compiled conjunctive query.
#[derive(Clone, Debug)]
pub struct Query {
    vars: Vec<Symbol>,
    /// The query as a synthetic rule `__answer__(vars…) :- body`, which
    /// reuses the rule matcher (join planning, index selection).
    rule: Rule,
    /// The matching plan, compiled once at construction and reused by every
    /// evaluation.
    plan: CompiledPlan,
}

impl Query {
    /// Compiles a query from literals. Fails if a variable occurs only in
    /// negative literals (range restriction).
    pub fn new(body: Vec<Literal>) -> Result<Query, SafetyError> {
        let mut seen = FxHashSet::default();
        let mut vars = Vec::new();
        for lit in &body {
            for v in lit.atom.vars() {
                if seen.insert(v) {
                    vars.push(v);
                }
            }
        }
        let head = Atom::new("__answer__", vars.iter().map(|&v| Term::Var(v)).collect());
        let rule = Rule::new(head, body)?;
        let plan = CompiledPlan::compile(&rule, None);
        Ok(Query { vars, rule, plan })
    }

    /// Parses a query such as `p(X), !q(X)`.
    pub fn parse(src: &str) -> Result<Query, DatalogError> {
        let body = crate::parser::parse_body(src)?;
        Ok(Query::new(body)?)
    }

    /// The distinct variables, in first-occurrence order; answers bind them
    /// positionally.
    pub fn vars(&self) -> &[Symbol] {
        &self.vars
    }

    /// Whether the query has no variables (a boolean query).
    pub fn is_boolean(&self) -> bool {
        self.vars.is_empty()
    }

    /// Evaluates over `db`, invoking `f` per answer; return `false` from
    /// `f` to stop early.
    ///
    /// Generic over [`RelSource`]: `db` may be the live
    /// [`crate::storage::Database`] or an
    /// immutable [`crate::storage::ModelSnapshot`] — the MVCC read path
    /// evaluates queries against published snapshots with no engine access.
    pub fn for_each<S: RelSource + ?Sized>(&self, db: &S, f: impl FnMut(&[Value]) -> bool) {
        self.for_each_with(db, &mut MatchScratch::new(), f);
    }

    /// [`Query::for_each`] with caller-owned scratch buffers — repeated
    /// evaluation of the same (or any) query through one `scratch` keeps
    /// the inner loop allocation-free, as the engine APIs do.
    pub fn for_each_with<S: RelSource + ?Sized>(
        &self,
        db: &S,
        scratch: &mut MatchScratch,
        mut f: impl FnMut(&[Value]) -> bool,
    ) {
        self.plan.for_each_head(db, None, &[], scratch, |head| f(&head.args));
    }

    /// All answers, sorted and deduplicated.
    pub fn eval<S: RelSource + ?Sized>(&self, db: &S) -> Vec<Row> {
        let mut rows: Vec<Row> = Vec::new();
        self.for_each(db, |vals| {
            rows.push(vals.into());
            true
        });
        rows.sort();
        rows.dedup();
        rows
    }

    /// Whether any answer exists.
    pub fn holds<S: RelSource + ?Sized>(&self, db: &S) -> bool {
        let mut any = false;
        self.for_each(db, |_| {
            any = true;
            false
        });
        any
    }

    /// Number of distinct answers.
    pub fn count<S: RelSource + ?Sized>(&self, db: &S) -> usize {
        self.eval(db).len()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, lit) in self.rule.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

/// Renders one answer row against the query's variables:
/// `X = 1, Y = alice`.
pub fn render_row(query: &Query, row: &[Value]) -> String {
    query
        .vars()
        .iter()
        .zip(row)
        .map(|(v, val)| format!("{} = {val}", v.as_str()))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{parse_facts, Database};

    fn db(src: &str) -> Database {
        Database::from_facts(parse_facts(src))
    }

    fn rows(q: &str, dbase: &Database) -> Vec<String> {
        let query = Query::parse(q).unwrap();
        query.eval(dbase).iter().map(|r| render_row(&query, r)).collect()
    }

    #[test]
    fn single_literal_query() {
        let dbase = db("e(1, 2). e(2, 3).");
        assert_eq!(rows("e(X, Y)", &dbase), vec!["X = 1, Y = 2", "X = 2, Y = 3"]);
    }

    #[test]
    fn join_query() {
        let dbase = db("e(1, 2). e(2, 3). e(3, 4).");
        assert_eq!(
            rows("e(X, Y), e(Y, Z)", &dbase),
            vec!["X = 1, Y = 2, Z = 3", "X = 2, Y = 3, Z = 4"]
        );
    }

    #[test]
    fn negated_literal_filters() {
        let dbase = db("s(1). s(2). a(1).");
        assert_eq!(rows("s(X), !a(X)", &dbase), vec!["X = 2"]);
    }

    #[test]
    fn boolean_query() {
        let dbase = db("p.");
        let q = Query::parse("p").unwrap();
        assert!(q.is_boolean());
        assert!(q.holds(&dbase));
        assert_eq!(q.eval(&dbase).len(), 1); // the empty row
        let q2 = Query::parse("p, !p").unwrap();
        assert!(!q2.holds(&dbase));
    }

    #[test]
    fn constants_restrict_answers() {
        let dbase = db("e(1, 2). e(1, 3). e(2, 3).");
        assert_eq!(rows("e(1, Y)", &dbase), vec!["Y = 2", "Y = 3"]);
    }

    #[test]
    fn unsafe_query_rejected() {
        assert!(Query::parse("!q(X)").is_err());
        assert!(Query::parse("p(X), !q(Y)").is_err());
    }

    #[test]
    fn duplicate_answers_deduplicated() {
        let dbase = db("e(1, 2). e(1, 3).");
        // X appears twice with the same binding through different matches.
        assert_eq!(rows("e(X, _)", &dbase).len(), 2);
        let q = Query::parse("e(X, _), e(X, _)").unwrap();
        assert_eq!(q.eval(&dbase).len(), 4); // anon vars are distinct
    }

    #[test]
    fn count_and_display() {
        let dbase = db("s(1). s(2). s(3). a(2).");
        let q = Query::parse("s(X), !a(X)").unwrap();
        assert_eq!(q.count(&dbase), 2);
        assert_eq!(q.to_string(), "s(X), !a(X)");
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let q = Query::parse("e(B, A), f(A, C)").unwrap();
        let names: Vec<&str> = q.vars().iter().map(|v| v.as_str()).collect();
        assert_eq!(names, vec!["B", "A", "C"]);
    }

    #[test]
    fn early_stop_via_for_each() {
        let dbase = db("e(1). e(2). e(3).");
        let q = Query::parse("e(X)").unwrap();
        let mut n = 0;
        q.for_each(&dbase, |_| {
            n += 1;
            false
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn scratch_reuse_across_queries() {
        let dbase = db("e(1, 2). e(2, 3). s(1).");
        let join = Query::parse("e(X, Y), e(Y, Z)").unwrap();
        let filter = Query::parse("s(X), !missing(X)").unwrap();
        let mut scratch = MatchScratch::new();
        for _ in 0..3 {
            let mut n = 0;
            join.for_each_with(&dbase, &mut scratch, |_| {
                n += 1;
                true
            });
            assert_eq!(n, 1);
            let mut m = 0;
            filter.for_each_with(&dbase, &mut scratch, |_| {
                m += 1;
                true
            });
            assert_eq!(m, 1);
        }
    }
}
