//! Globally interned symbols.
//!
//! Relation names, constants, and variable names are interned into a global
//! append-only table, making [`Symbol`] a `Copy` integer that is cheap to
//! hash, compare, and store in tuples. Interning happens at parse/build time,
//! never inside evaluation hot loops.

use std::fmt;
use std::sync::{Mutex, OnceLock};

use rustc_hash::FxHashMap;

/// An interned string. Two symbols are equal iff their names are equal.
///
/// ```
/// use strata_datalog::Symbol;
/// let a = Symbol::new("edge");
/// let b = Symbol::new("edge");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "edge");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();

fn interner() -> &'static Mutex<Interner> {
    INTERNER.get_or_init(|| Mutex::new(Interner { map: FxHashMap::default(), names: Vec::new() }))
}

impl Symbol {
    /// Interns `name`, returning its symbol. Idempotent.
    pub fn new(name: &str) -> Symbol {
        let mut i = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        // The interner is append-only and process-global, so leaking each
        // distinct name once bounds total leakage by the vocabulary size.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(i.names.len()).expect("symbol table overflow");
        i.names.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned name.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("symbol interner poisoned").names[self.0 as usize]
    }

    /// The raw interner id (stable for the process lifetime).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("foo_symbol_test");
        let b = Symbol::new("foo_symbol_test");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = Symbol::new("sym_left");
        let b = Symbol::new("sym_right");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn as_str_round_trips() {
        let s = Symbol::new("round_trip_me");
        assert_eq!(s.as_str(), "round_trip_me");
        assert_eq!(s.to_string(), "round_trip_me");
        assert_eq!(format!("{s:?}"), "\"round_trip_me\"");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        // Eight threads race to intern the same 50 names, starting at
        // different offsets; afterwards, every thread must have observed
        // the same id for each name.
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..50)
                        .map(|i| {
                            let name = format!("conc_{}", (i + t) % 50);
                            (name.clone(), Symbol::new(&name).id())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<(String, u32)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            for (name, id) in r {
                assert_eq!(Symbol::new(name).id(), *id, "thread disagreed on {name}");
            }
        }
    }

    #[test]
    fn ordering_is_stable() {
        let a = Symbol::new("ord_a");
        let b = Symbol::new("ord_b");
        // Ord is by intern id, not lexicographic; it only needs to be total.
        assert_eq!(a.cmp(&b), a.cmp(&b));
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
