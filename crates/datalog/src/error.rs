//! Error types for parsing, safety checking, and stratification.

use std::fmt;

use crate::symbol::Symbol;

/// Any error produced by the datalog substrate.
#[derive(Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Syntax error while parsing a program or fact.
    Parse(ParseError),
    /// A rule violates the safety (range-restriction) condition.
    Safety(SafetyError),
    /// The program has recursion through negation.
    Stratification(StratificationError),
    /// A relation was used with two different arities.
    ArityMismatch {
        /// The relation in question.
        rel: Symbol,
        /// The arity recorded first.
        expected: usize,
        /// The conflicting arity.
        found: usize,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse(e) => write!(f, "{e}"),
            DatalogError::Safety(e) => write!(f, "{e}"),
            DatalogError::Stratification(e) => write!(f, "{e}"),
            DatalogError::ArityMismatch { rel, expected, found } => write!(
                f,
                "relation `{rel}` used with arity {found}, but previously with arity {expected}"
            ),
        }
    }
}

impl fmt::Debug for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for DatalogError {}

impl From<ParseError> for DatalogError {
    fn from(e: ParseError) -> Self {
        DatalogError::Parse(e)
    }
}

impl From<SafetyError> for DatalogError {
    fn from(e: SafetyError) -> Self {
        DatalogError::Safety(e)
    }
}

impl From<StratificationError> for DatalogError {
    fn from(e: StratificationError) -> Self {
        DatalogError::Stratification(e)
    }
}

/// A syntax error, with 1-based line/column position.
#[derive(Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl fmt::Debug for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ParseError {}

/// A rule safety (range-restriction) violation.
///
/// Every variable of the head and of every negative literal must occur in
/// some positive body literal; otherwise the rule has no finite meaning
/// under the closed-world reading.
#[derive(Clone, PartialEq, Eq)]
pub struct SafetyError {
    /// The offending variable.
    pub var: Symbol,
    /// Rendered text of the offending rule.
    pub rule: String,
    /// Whether the variable occurred in a negative literal (vs. the head).
    pub in_negative_literal: bool,
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let place = if self.in_negative_literal { "a negative literal" } else { "the head" };
        write!(
            f,
            "unsafe rule `{}`: variable {} occurs in {} but in no positive body literal",
            self.rule, self.var, place
        )
    }
}

impl fmt::Debug for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for SafetyError {}

/// Recursion through negation: a cycle of the dependency graph contains a
/// negative arc, so the program is not stratified.
#[derive(Clone, PartialEq, Eq)]
pub struct StratificationError {
    /// A witness cycle `r0 → r1 → … → r0` containing a negative arc.
    pub cycle: Vec<Symbol>,
}

impl fmt::Display for StratificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program is not stratified: negative cycle through ")?;
        for (i, r) in self.cycle.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for StratificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for StratificationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = ParseError { line: 3, col: 7, msg: "expected `.`".into() };
        assert_eq!(e.to_string(), "parse error at 3:7: expected `.`");
    }

    #[test]
    fn display_safety_error() {
        let e = SafetyError {
            var: Symbol::new("X"),
            rule: "p(X) :- !q(X).".into(),
            in_negative_literal: true,
        };
        assert!(e.to_string().contains("negative literal"));
        assert!(e.to_string().contains('X'));
    }

    #[test]
    fn display_stratification_error() {
        let e = StratificationError { cycle: vec![Symbol::new("p"), Symbol::new("q")] };
        assert!(e.to_string().contains("p -> q"));
    }

    #[test]
    fn conversions_into_datalog_error() {
        let e: DatalogError = ParseError { line: 1, col: 1, msg: "x".into() }.into();
        assert!(matches!(e, DatalogError::Parse(_)));
        let e: DatalogError = StratificationError { cycle: vec![] }.into();
        assert!(matches!(e, DatalogError::Stratification(_)));
    }
}
