//! Terms and ground values.
//!
//! The language is function-free (a *database* language): a term is either a
//! constant [`Value`] or a variable. Ground tuples are slices of values.

use std::fmt;

use crate::symbol::Symbol;

/// A ground constant: an interned symbolic constant or a machine integer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A symbolic constant such as `alice` or `"hello world"`.
    Sym(Symbol),
    /// An integer constant such as `42`.
    Int(i64),
}

impl Value {
    /// A symbolic constant.
    pub fn sym(name: &str) -> Value {
        Value::Sym(Symbol::new(name))
    }

    /// An integer constant.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write_symbol(f, s.as_str()),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

/// Whether a symbol must be printed quoted to re-parse: anything that the
/// lexer would not read back as a plain identifier, including the `not`
/// keyword (which lexes as negation).
pub(crate) fn needs_quoting(name: &str) -> bool {
    if name == "not" {
        return true;
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {
            chars.any(|c| !(c.is_ascii_alphanumeric() || c == '_'))
        }
        _ => true,
    }
}

/// Writes a symbol name, quoting and escaping when required.
///
/// The escape set is deliberately closed — exactly what the lexer accepts
/// (`\"`, `\\`, `\n`, `\t`, `\r`, `\u{…}` for other control characters) —
/// so `Display` output always re-parses, independent of how Rust's own
/// `Debug` string escaping evolves. Used for constants and relation names.
pub(crate) fn write_symbol(f: &mut fmt::Formatter<'_>, name: &str) -> fmt::Result {
    use fmt::Write;
    if !needs_quoting(name) {
        return f.write_str(name);
    }
    f.write_char('"')?;
    for c in name.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 || (c as u32) == 0x7f => write!(f, "\\u{{{:x}}}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// A term: a constant or a variable.
///
/// Variables are interned symbols; by convention (enforced by the parser)
/// variable names start with an uppercase letter or `_`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant term.
    Const(Value),
    /// A variable term.
    Var(Symbol),
}

impl Term {
    /// A variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::new(name))
    }

    /// A symbolic constant term.
    pub fn sym(name: &str) -> Term {
        Term::Const(Value::sym(name))
    }

    /// An integer constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::int(i))
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Term::Const(v) => Some(*v),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(v) => f.write_str(v.as_str()),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_constructors() {
        assert_eq!(Value::sym("a"), Value::Sym(Symbol::new("a")));
        assert_eq!(Value::int(7), Value::Int(7));
        assert_ne!(Value::sym("7"), Value::int(7));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::sym("alice").to_string(), "alice");
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::sym("Hello world").to_string(), "\"Hello world\"");
        assert_eq!(Value::sym("x-y").to_string(), "\"x-y\"");
    }

    #[test]
    fn value_display_escapes_are_closed() {
        assert_eq!(Value::sym("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Value::sym("a\\b").to_string(), "\"a\\\\b\"");
        assert_eq!(Value::sym("a\nb\tc\rd").to_string(), "\"a\\nb\\tc\\rd\"");
        assert_eq!(Value::sym("a\u{1}b").to_string(), "\"a\\u{1}b\"");
        assert_eq!(Value::sym("").to_string(), "\"\"");
        // `not` lexes as negation, so it must be quoted to survive.
        assert_eq!(Value::sym("not").to_string(), "\"not\"");
        // Non-ASCII passes through verbatim inside quotes.
        assert_eq!(Value::sym("héllo wörld").to_string(), "\"héllo wörld\"");
        // Parser-significant characters force quoting.
        assert_eq!(Value::sym("a.b").to_string(), "\"a.b\"");
        assert_eq!(Value::sym("7up").to_string(), "\"7up\"");
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("X");
        let c = Term::sym("a");
        assert!(v.is_var());
        assert!(!c.is_var());
        assert_eq!(v.as_var(), Some(Symbol::new("X")));
        assert_eq!(c.as_var(), None);
        assert_eq!(c.as_const(), Some(Value::sym("a")));
        assert_eq!(v.as_const(), None);
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::sym("a").to_string(), "a");
        assert_eq!(Term::int(12).to_string(), "12");
    }

    #[test]
    fn conversions() {
        let t: Term = Value::int(1).into();
        assert_eq!(t, Term::int(1));
        let v: Value = 5i64.into();
        assert_eq!(v, Value::Int(5));
        let v: Value = "abc".into();
        assert_eq!(v, Value::sym("abc"));
    }
}
