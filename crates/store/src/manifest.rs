//! The shard manifest: which epoch/shard layout a sharded database
//! directory is currently on.
//!
//! A sharded database root looks like:
//!
//! ```text
//! <root>/MANIFEST            `epoch=<e> shards=<n>`
//! <root>/epoch-<e>/shard-0   a normal store directory (WAL + snapshots)
//! <root>/epoch-<e>/shard-1
//! …
//! ```
//!
//! Re-sharding (a rule update changes the dependency components) builds the
//! **next** epoch's shard stores completely — engines rebuilt, checkpointed —
//! before atomically rewriting `MANIFEST` to point at it. The manifest flip
//! is the commit point: a crash before it recovers the old epoch untouched;
//! a crash after it recovers the new one. Epoch directories other than the
//! manifest's are orphans from an interrupted re-shard and are removed at
//! the next open.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::StoreError;

/// File name of the shard manifest inside a sharded database root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Directory-name prefix of an epoch inside the root.
pub const EPOCH_DIR_PREFIX: &str = "epoch-";

/// The committed shard layout of a database root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Monotone re-shard generation; bumped by every rule barrier that
    /// changes the partition.
    pub epoch: u64,
    /// Number of shard stores in this epoch.
    pub shards: u32,
}

impl ShardManifest {
    /// The directory of `epoch` under `root`.
    pub fn epoch_dir(root: &Path, epoch: u64) -> PathBuf {
        root.join(format!("{EPOCH_DIR_PREFIX}{epoch}"))
    }

    /// The store directory of shard `k` in `epoch` under `root`.
    pub fn shard_dir(root: &Path, epoch: u64, k: u32) -> PathBuf {
        Self::epoch_dir(root, epoch).join(format!("shard-{k}"))
    }

    /// Reads the manifest under `root`. `Ok(None)` if none exists (a fresh
    /// root); `Corrupt` if the file exists but cannot be parsed.
    pub fn load(root: &Path) -> Result<Option<ShardManifest>, StoreError> {
        let path = root.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let corrupt =
            || StoreError::Corrupt(format!("malformed shard manifest {path:?}: {text:?}"));
        let mut epoch = None;
        let mut shards = None;
        for field in text.split_whitespace() {
            match field.split_once('=') {
                Some(("epoch", v)) => epoch = v.parse::<u64>().ok(),
                Some(("shards", v)) => shards = v.parse::<u32>().ok(),
                _ => return Err(corrupt()),
            }
        }
        match (epoch, shards) {
            (Some(epoch), Some(shards)) if shards > 0 => Ok(Some(ShardManifest { epoch, shards })),
            _ => Err(corrupt()),
        }
    }

    /// Atomically writes this manifest under `root` (temp file, fsync,
    /// rename, directory fsync) — the same dance as snapshot renames, so a
    /// crash leaves either the old manifest or the new one, never a torn
    /// prefix.
    pub fn store(&self, root: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(root)?;
        let path = root.join(MANIFEST_FILE);
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            writeln!(f, "epoch={} shards={}", self.epoch, self.shards)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        File::open(root)?.sync_all()?;
        Ok(())
    }

    /// Removes every `epoch-<k>` directory under `root` other than this
    /// manifest's epoch — leftovers of a re-shard interrupted before (next
    /// epoch half-built) or after (previous epoch not yet deleted) the
    /// manifest flip. Best-effort; returns the directories it removed.
    pub fn remove_orphan_epochs(&self, root: &Path) -> Vec<PathBuf> {
        let mut removed = Vec::new();
        let Ok(entries) = std::fs::read_dir(root) else {
            return removed;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(epoch) =
                name.to_str().and_then(|n| n.strip_prefix(EPOCH_DIR_PREFIX)?.parse::<u64>().ok())
            else {
                continue;
            };
            if epoch != self.epoch && std::fs::remove_dir_all(entry.path()).is_ok() {
                removed.push(entry.path());
            }
        }
        removed.sort();
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("strata_manifest_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_fresh_root() {
        let dir = tmpdir("roundtrip");
        assert!(ShardManifest::load(&dir).unwrap().is_none());
        let m = ShardManifest { epoch: 3, shards: 4 };
        m.store(&dir).unwrap();
        assert_eq!(ShardManifest::load(&dir).unwrap(), Some(m));
        assert!(!dir.join("MANIFEST.tmp").exists(), "temp file never lingers");
        // Overwrite flips atomically to the new content.
        let m2 = ShardManifest { epoch: 4, shards: 2 };
        m2.store(&dir).unwrap();
        assert_eq!(ShardManifest::load(&dir).unwrap(), Some(m2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_manifest_is_corrupt() {
        let dir = tmpdir("malformed");
        std::fs::create_dir_all(&dir).unwrap();
        for junk in ["", "epoch=1", "shards=2", "epoch=x shards=2", "epoch=1 shards=0", "what"] {
            std::fs::write(dir.join(MANIFEST_FILE), junk).unwrap();
            match ShardManifest::load(&dir) {
                Err(StoreError::Corrupt(msg)) => assert!(msg.contains("manifest"), "{msg}"),
                other => panic!("junk {junk:?}: expected Corrupt, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_epochs_removed_but_current_kept() {
        let dir = tmpdir("orphans");
        let m = ShardManifest { epoch: 2, shards: 1 };
        m.store(&dir).unwrap();
        for e in [1u64, 2, 3] {
            std::fs::create_dir_all(ShardManifest::shard_dir(&dir, e, 0)).unwrap();
        }
        std::fs::create_dir_all(dir.join("not-an-epoch")).unwrap();
        let removed = m.remove_orphan_epochs(&dir);
        assert_eq!(
            removed,
            vec![ShardManifest::epoch_dir(&dir, 1), ShardManifest::epoch_dir(&dir, 3)]
        );
        assert!(ShardManifest::epoch_dir(&dir, 2).exists());
        assert!(dir.join("not-an-epoch").exists(), "unrelated dirs untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
