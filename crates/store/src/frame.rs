//! Checksummed, length-prefixed record frames — the unit of both the WAL
//! and the snapshot file.
//!
//! ```text
//! frame ::= len:u32  payload:len-bytes  crc:u32
//! ```
//!
//! `crc` is CRC-32 (IEEE, reflected — the zlib/ethernet polynomial) over
//! the payload, implemented here because the workspace vendors no external
//! crates. A frame whose length field runs past the input, or whose
//! checksum does not match, is a **torn frame**: the reader reports how
//! many bytes of intact frames precede it so the caller can truncate.

/// Frame overhead: the `u32` length prefix plus the `u32` checksum.
pub const FRAME_OVERHEAD: usize = 8;

/// Frames larger than this are treated as corruption rather than attempted
/// (a torn length field can otherwise masquerade as a multi-gigabyte
/// allocation).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table-driven, table built on first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends one frame around `payload`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// One step of frame reading.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// An intact frame; `next` is the offset just past it.
    Ok {
        /// The frame payload.
        payload: &'a [u8],
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// Clean end of input at the given offset.
    End,
    /// A torn or corrupt frame starts at this offset; bytes before it are
    /// intact.
    Torn,
}

/// Reads the frame starting at `at`.
pub fn read_frame(buf: &[u8], at: usize) -> FrameRead<'_> {
    if at == buf.len() {
        return FrameRead::End;
    }
    if buf.len() - at < FRAME_OVERHEAD {
        return FrameRead::Torn;
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN || buf.len() - at < FRAME_OVERHEAD + len {
        return FrameRead::Torn;
    }
    let payload = &buf[at + 4..at + 4 + len];
    let crc = u32::from_le_bytes(buf[at + 4 + len..at + FRAME_OVERHEAD + len].try_into().unwrap());
    if crc != crc32(payload) {
        return FrameRead::Torn;
    }
    FrameRead::Ok { payload, next: at + FRAME_OVERHEAD + len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, &[0xff; 100]);
        let FrameRead::Ok { payload, next } = read_frame(&buf, 0) else { panic!() };
        assert_eq!(payload, b"hello");
        let FrameRead::Ok { payload, next } = read_frame(&buf, next) else { panic!() };
        assert_eq!(payload, b"");
        let FrameRead::Ok { payload, next } = read_frame(&buf, next) else { panic!() };
        assert_eq!(payload, &[0xff; 100]);
        assert_eq!(read_frame(&buf, next), FrameRead::End);
    }

    #[test]
    fn every_truncation_is_torn_not_misread() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        write_frame(&mut buf, b"second");
        let first_end = FRAME_OVERHEAD + 5;
        assert_eq!(read_frame(&buf[..first_end], first_end), FrameRead::End, "clean boundary");
        for cut in first_end + 1..buf.len() {
            assert_eq!(read_frame(&buf[..cut], first_end), FrameRead::Torn, "cut {cut}");
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload");
        for bit in 0..buf.len() * 8 {
            let mut corrupted = buf.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            // Either torn, or (for length-field flips that still parse) the
            // payload must differ from a clean read — never a silent wrong
            // accept of the same-length payload.
            match read_frame(&corrupted, 0) {
                FrameRead::Torn | FrameRead::End => {}
                FrameRead::Ok { .. } => panic!("bit {bit} accepted"),
            }
        }
    }

    #[test]
    fn absurd_length_field_is_torn() {
        let mut buf = vec![0xff, 0xff, 0xff, 0x7f];
        buf.extend_from_slice(&[0u8; 64]);
        assert_eq!(read_frame(&buf, 0), FrameRead::Torn);
    }
}
