//! Snapshot files: the belief state at one WAL position, written
//! atomically.
//!
//! Two containers share the format machinery:
//!
//! * [`Snapshot`] — a **full** snapshot, the complete belief state:
//!
//!   ```text
//!   magic:"SSNP" version:u32 seq:u64 frame(meta) frame(payload)
//!   ```
//!
//! * [`DeltaSnapshot`] — an **incremental** snapshot, the changes since a
//!   previous chain link, linked by sequence number:
//!
//!   ```text
//!   magic:"SSND" version:u32 seq:u64 prev_seq:u64 frame(meta) frame(payload)
//!   ```
//!
//!   `prev_seq` names the link this delta extends: the base snapshot's
//!   `seq` for the first delta, the previous delta's `seq` after that. A
//!   chain whose links don't join is detected at read time — see
//!   [`crate::Store`] for the chain-recovery rules.
//!
//! `meta` is a short UTF-8 string (the engine strategy that wrote the
//! snapshot); `payload` is opaque to the store — the maintenance layer
//! encodes the program, the model, and the per-fact support dump into it.
//! Both are [`crate::frame`] frames, so each carries its own CRC-32.
//!
//! Writes go to a temp file in the same directory, are fsynced, and then
//! renamed over the live name — readers see either the old snapshot or the
//! new one, never a prefix. The directory is fsynced after the rename so
//! the rename itself is durable.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::frame::{read_frame, write_frame, FrameRead};

const MAGIC: &[u8; 4] = b"SSNP";
const DELTA_MAGIC: &[u8; 4] = b"SSND";
const VERSION: u32 = 1;

/// A decoded snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The WAL sequence number this snapshot covers: recovery replays only
    /// transactions with `seq` greater than this.
    pub seq: u64,
    /// Writer metadata (the strategy name).
    pub meta: String,
    /// The encoded belief state (opaque to the store).
    pub payload: Vec<u8>,
}

/// Why a snapshot failed to decode.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The bytes are not a valid snapshot (bad magic/version/frame).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

impl Snapshot {
    /// Encodes the snapshot to its file representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + self.meta.len() + 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        write_frame(&mut out, self.meta.as_bytes());
        write_frame(&mut out, &self.payload);
        out
    }

    /// Decodes a snapshot from file bytes.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 16 || &bytes[..4] != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::Corrupt("unsupported version"));
        }
        let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let FrameRead::Ok { payload: meta, next } = read_frame(bytes, 16) else {
            return Err(SnapshotError::Corrupt("torn meta frame"));
        };
        let meta = std::str::from_utf8(meta)
            .map_err(|_| SnapshotError::Corrupt("meta is not UTF-8"))?
            .to_string();
        let FrameRead::Ok { payload, next } = read_frame(bytes, next) else {
            return Err(SnapshotError::Corrupt("torn payload frame"));
        };
        if next != bytes.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Snapshot { seq, meta, payload: payload.to_vec() })
    }

    /// Writes the snapshot to `path` atomically: temp file in the same
    /// directory, fsync, rename, fsync directory.
    ///
    /// Errors (rather than panicking in `write_frame`) if the payload
    /// exceeds the 64 MiB single-frame cap — the current format's size
    /// limit for one belief state.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        check_frame_caps(&self.meta, &self.payload)?;
        write_atomic_bytes(path, &self.encode())
    }

    /// Reads the snapshot at `path`; `Ok(None)` if the file does not exist.
    pub fn read(path: &Path) -> Result<Option<Snapshot>, SnapshotError> {
        match read_all(path)? {
            Some(bytes) => Self::decode(&bytes).map(Some),
            None => Ok(None),
        }
    }
}

/// A decoded incremental snapshot: one link of a delta chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSnapshot {
    /// The WAL sequence number this link extends coverage to.
    pub seq: u64,
    /// The `seq` of the chain link this delta builds on (the base
    /// snapshot, or the previous delta).
    pub prev_seq: u64,
    /// Writer metadata (the strategy name).
    pub meta: String,
    /// The encoded state delta (opaque to the store).
    pub payload: Vec<u8>,
}

impl DeltaSnapshot {
    /// Encodes the delta to its file representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + self.meta.len() + 40);
        out.extend_from_slice(DELTA_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.prev_seq.to_le_bytes());
        write_frame(&mut out, self.meta.as_bytes());
        write_frame(&mut out, &self.payload);
        out
    }

    /// Decodes a delta from file bytes.
    pub fn decode(bytes: &[u8]) -> Result<DeltaSnapshot, SnapshotError> {
        if bytes.len() < 24 || &bytes[..4] != DELTA_MAGIC {
            return Err(SnapshotError::Corrupt("bad delta magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::Corrupt("unsupported delta version"));
        }
        let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let prev_seq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let FrameRead::Ok { payload: meta, next } = read_frame(bytes, 24) else {
            return Err(SnapshotError::Corrupt("torn delta meta frame"));
        };
        let meta = std::str::from_utf8(meta)
            .map_err(|_| SnapshotError::Corrupt("delta meta is not UTF-8"))?
            .to_string();
        let FrameRead::Ok { payload, next } = read_frame(bytes, next) else {
            return Err(SnapshotError::Corrupt("torn delta payload frame"));
        };
        if next != bytes.len() {
            return Err(SnapshotError::Corrupt("trailing bytes after delta"));
        }
        Ok(DeltaSnapshot { seq, prev_seq, meta, payload: payload.to_vec() })
    }

    /// Writes the delta to `path` atomically (same temp/fsync/rename dance
    /// as [`Snapshot::write_atomic`]).
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        check_frame_caps(&self.meta, &self.payload)?;
        write_atomic_bytes(path, &self.encode())
    }

    /// Reads the delta at `path`; `Ok(None)` if the file does not exist.
    pub fn read(path: &Path) -> Result<Option<DeltaSnapshot>, SnapshotError> {
        match read_all(path)? {
            Some(bytes) => Self::decode(&bytes).map(Some),
            None => Ok(None),
        }
    }
}

/// Errors (rather than panicking in `write_frame`) if a section exceeds
/// the 64 MiB single-frame cap — the format's size limit per section.
fn check_frame_caps(meta: &str, payload: &[u8]) -> Result<(), SnapshotError> {
    if payload.len() > crate::frame::MAX_FRAME_LEN || meta.len() > crate::frame::MAX_FRAME_LEN {
        return Err(SnapshotError::Corrupt("snapshot payload exceeds the 64 MiB frame cap"));
    }
    Ok(())
}

/// Temp-write, fsync, rename over `path`, fsync the directory. The temp
/// name is derived from the target file name, so concurrent writes of the
/// base snapshot and a delta never collide on one temp file.
fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let dir = path.parent().ok_or(SnapshotError::Corrupt("snapshot path has no parent"))?;
    let name = path.file_name().ok_or(SnapshotError::Corrupt("snapshot path has no file name"))?;
    let mut tmp_name = name.to_os_string();
    tmp_name.push(".tmp");
    let tmp: PathBuf = path.with_file_name(tmp_name);
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself.
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads a whole file; `Ok(None)` if it does not exist.
fn read_all(path: &Path) -> Result<Option<Vec<u8>>, SnapshotError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    Ok(Some(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strata_snap_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = Snapshot { seq: 42, meta: "cascade".into(), payload: vec![1, 2, 3, 0, 255] };
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn write_read_missing_and_corrupt() {
        let dir = tmpdir("rw");
        let path = dir.join("snapshot.snap");
        assert!(Snapshot::read(&path).unwrap().is_none());
        let s = Snapshot { seq: 7, meta: "static".into(), payload: b"state".to_vec() };
        s.write_atomic(&path).unwrap();
        assert_eq!(Snapshot::read(&path).unwrap(), Some(s.clone()));
        // Overwrite is atomic: the temp file never lingers.
        s.write_atomic(&path).unwrap();
        assert!(!dir.join("snapshot.snap.tmp").exists());
        // Any truncation is rejected, never misread.
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(Snapshot::read(&path).is_err(), "cut {cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_encode_decode_round_trip() {
        let d =
            DeltaSnapshot { seq: 99, prev_seq: 42, meta: "cascade".into(), payload: vec![9, 8, 7] };
        assert_eq!(DeltaSnapshot::decode(&d.encode()).unwrap(), d);
        // The two containers never decode as each other.
        assert!(Snapshot::decode(&d.encode()).is_err());
        let s = Snapshot { seq: 42, meta: "cascade".into(), payload: vec![1] };
        assert!(DeltaSnapshot::decode(&s.encode()).is_err());
    }

    #[test]
    fn delta_write_read_and_truncation_rejected() {
        let dir = tmpdir("delta_rw");
        let path = dir.join("snapshot.delta-1");
        assert!(DeltaSnapshot::read(&path).unwrap().is_none());
        let d =
            DeltaSnapshot { seq: 5, prev_seq: 3, meta: "static".into(), payload: b"d".to_vec() };
        d.write_atomic(&path).unwrap();
        assert_eq!(DeltaSnapshot::read(&path).unwrap(), Some(d.clone()));
        assert!(!dir.join("snapshot.delta-1.tmp").exists(), "temp file never lingers");
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(DeltaSnapshot::read(&path).is_err(), "cut {cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_magic_checked() {
        let s = Snapshot { seq: 1, meta: String::new(), payload: vec![] };
        let mut bytes = s.encode();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::decode(&bytes), Err(SnapshotError::Corrupt("bad magic"))));
        let mut bytes = s.encode();
        bytes[4] = 99;
        assert!(Snapshot::decode(&bytes).is_err());
        let mut bytes = s.encode();
        bytes.push(0);
        assert!(Snapshot::decode(&bytes).is_err(), "trailing bytes rejected");
    }
}
