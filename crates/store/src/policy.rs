//! Auto-compaction policy: *when* should a store checkpoint and truncate
//! its WAL?
//!
//! The policy is pure data — thresholds on observable store state — so the
//! decision is deterministic and testable without I/O. The maintenance
//! layer evaluates [`CompactionPolicy::due`] after commits (the service
//! worker does so once per applied group) and triggers a checkpoint when it
//! returns `true`.
//!
//! Two thresholds, either of which makes compaction due:
//!
//! * `max_wal_bytes` — the WAL has grown past a byte budget;
//! * `max_recovery_ms` — replaying the WAL at the observed replay rate
//!   would exceed a restart-time budget (the ROADMAP's "restarts measured
//!   in hours" failure mode, bounded directly).
//!
//! `min_wal_txns` guards both: a store with fewer terminated transactions
//! than this is never compacted, so tiny write bursts don't thrash the
//! snapshot writer.
//!
//! ## String form
//!
//! ```text
//! policy ::= "off" | "auto" | part ("," part)*
//! part   ::= "wal=" bytes | "ms=" millis | "txns=" count
//! bytes  ::= integer ["k" | "m" | "g"]     (KiB / MiB / GiB)
//! ```
//!
//! `off` disables compaction (the default); `auto` is the production
//! preset ([`CompactionPolicy::default_auto`]). Parsing the displayed form
//! reproduces the policy exactly.

use std::fmt;
use std::str::FromStr;

/// Thresholds that decide when a store should auto-compact. The default is
/// [`disabled`](CompactionPolicy::disabled): no automatic checkpoints, the
/// pre-policy behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once the WAL holds at least this many bytes of terminated
    /// transactions. `None` = no byte threshold.
    pub max_wal_bytes: Option<u64>,
    /// Compact once the estimated replay time of the WAL exceeds this many
    /// milliseconds. `None` = no recovery-time threshold.
    pub max_recovery_ms: Option<u64>,
    /// Never compact while the WAL holds fewer terminated transactions
    /// than this (anti-thrash guard; 0 = no guard).
    pub min_wal_txns: u64,
}

/// The `auto` preset's WAL byte budget (16 MiB).
const AUTO_MAX_WAL_BYTES: u64 = 16 * 1024 * 1024;
/// The `auto` preset's recovery-time budget (1 s).
const AUTO_MAX_RECOVERY_MS: u64 = 1_000;
/// The `auto` preset's anti-thrash floor.
const AUTO_MIN_WAL_TXNS: u64 = 64;

impl CompactionPolicy {
    /// No automatic compaction (the default).
    pub fn disabled() -> CompactionPolicy {
        CompactionPolicy::default()
    }

    /// The production preset: compact at 16 MiB of WAL or an estimated
    /// 1 s of replay, but never under 64 transactions.
    pub fn default_auto() -> CompactionPolicy {
        CompactionPolicy {
            max_wal_bytes: Some(AUTO_MAX_WAL_BYTES),
            max_recovery_ms: Some(AUTO_MAX_RECOVERY_MS),
            min_wal_txns: AUTO_MIN_WAL_TXNS,
        }
    }

    /// Whether any threshold is set at all.
    pub fn is_enabled(&self) -> bool {
        self.max_wal_bytes.is_some() || self.max_recovery_ms.is_some()
    }

    /// Whether a compaction is due given the store's current WAL size,
    /// terminated-transaction count, and estimated replay time.
    pub fn due(&self, wal_bytes: u64, wal_txns: u64, est_recovery_ms: u64) -> bool {
        if wal_txns < self.min_wal_txns {
            return false;
        }
        self.max_wal_bytes.is_some_and(|cap| wal_bytes >= cap)
            || self.max_recovery_ms.is_some_and(|cap| est_recovery_ms >= cap)
    }
}

/// A parse failure for a compaction-policy string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyParseError(pub(crate) String);

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad compaction policy: {}", self.0)
    }
}

impl std::error::Error for PolicyParseError {}

/// Parses an integer with an optional `k`/`m`/`g` binary-unit suffix.
fn parse_bytes(s: &str) -> Result<u64, PolicyParseError> {
    let (digits, shift) = match s.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&s[..s.len() - 1], 10),
        Some(b'm') | Some(b'M') => (&s[..s.len() - 1], 20),
        Some(b'g') | Some(b'G') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n = digits
        .parse::<u64>()
        .map_err(|_| PolicyParseError(format!("`{s}`: expected an integer byte count")))?;
    n.checked_shl(shift)
        .filter(|v| shift == 0 || *v >> shift == n)
        .ok_or_else(|| PolicyParseError(format!("`{s}`: byte count overflows")))
}

impl FromStr for CompactionPolicy {
    type Err = PolicyParseError;

    fn from_str(s: &str) -> Result<CompactionPolicy, PolicyParseError> {
        let s = s.trim();
        match s {
            "" | "off" => return Ok(CompactionPolicy::disabled()),
            "auto" => return Ok(CompactionPolicy::default_auto()),
            _ => {}
        }
        let mut policy = CompactionPolicy::disabled();
        for part in s.split(',') {
            let (key, value) = part
                .trim()
                .split_once('=')
                .ok_or_else(|| PolicyParseError(format!("`{part}`: expected key=value")))?;
            match key {
                "wal" => policy.max_wal_bytes = Some(parse_bytes(value)?),
                "ms" => {
                    policy.max_recovery_ms = Some(value.parse::<u64>().map_err(|_| {
                        PolicyParseError(format!("`{value}`: ms must be an integer"))
                    })?)
                }
                "txns" => {
                    policy.min_wal_txns = value.parse::<u64>().map_err(|_| {
                        PolicyParseError(format!("`{value}`: txns must be an integer"))
                    })?
                }
                other => {
                    return Err(PolicyParseError(format!(
                        "`{other}`: unknown key (wal | ms | txns)"
                    )))
                }
            }
        }
        if !policy.is_enabled() {
            return Err(PolicyParseError(
                "a policy needs at least one of wal=<bytes> or ms=<millis>".into(),
            ));
        }
        Ok(policy)
    }
}

impl fmt::Display for CompactionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_enabled() {
            return f.write_str("off");
        }
        let mut sep = "";
        if let Some(b) = self.max_wal_bytes {
            write!(f, "wal={b}")?;
            sep = ",";
        }
        if let Some(ms) = self.max_recovery_ms {
            write!(f, "{sep}ms={ms}")?;
            sep = ",";
        }
        if self.min_wal_txns != 0 {
            write!(f, "{sep}txns={}", self.min_wal_txns)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_never_due() {
        let p = CompactionPolicy::disabled();
        assert!(!p.is_enabled());
        assert!(!p.due(u64::MAX, u64::MAX, u64::MAX));
    }

    #[test]
    fn byte_threshold_fires_at_cap() {
        let p = CompactionPolicy { max_wal_bytes: Some(100), ..CompactionPolicy::disabled() };
        assert!(!p.due(99, 1000, 0));
        assert!(p.due(100, 1000, 0));
    }

    #[test]
    fn recovery_threshold_fires_at_cap() {
        let p = CompactionPolicy { max_recovery_ms: Some(50), ..CompactionPolicy::disabled() };
        assert!(!p.due(u64::MAX, 1000, 49));
        assert!(p.due(0, 1000, 50));
    }

    #[test]
    fn txn_floor_guards_both_thresholds() {
        let p =
            CompactionPolicy { max_wal_bytes: Some(1), max_recovery_ms: Some(1), min_wal_txns: 10 };
        assert!(!p.due(u64::MAX, 9, u64::MAX), "under the txn floor nothing fires");
        assert!(p.due(1, 10, 0));
    }

    #[test]
    fn parse_presets_and_parts() {
        assert_eq!("off".parse::<CompactionPolicy>().unwrap(), CompactionPolicy::disabled());
        assert_eq!("".parse::<CompactionPolicy>().unwrap(), CompactionPolicy::disabled());
        assert_eq!("auto".parse::<CompactionPolicy>().unwrap(), CompactionPolicy::default_auto());
        let p: CompactionPolicy = "wal=64m,ms=500,txns=8".parse().unwrap();
        assert_eq!(
            p,
            CompactionPolicy {
                max_wal_bytes: Some(64 * 1024 * 1024),
                max_recovery_ms: Some(500),
                min_wal_txns: 8,
            }
        );
        let p: CompactionPolicy = "wal=4096".parse().unwrap();
        assert_eq!(p.max_wal_bytes, Some(4096));
        assert_eq!(p.max_recovery_ms, None);
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in ["wal", "wal=x", "bogus=1", "txns=5", "ms=", "wal=999999999999g"] {
            assert!(s.parse::<CompactionPolicy>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for s in ["off", "auto", "wal=64m,ms=500,txns=8", "wal=4096", "ms=250"] {
            let p: CompactionPolicy = s.parse().unwrap();
            let again: CompactionPolicy = p.to_string().parse().unwrap();
            assert_eq!(again, p, "round trip of `{s}` (displayed `{p}`)");
        }
    }
}
