//! # strata-store
//!
//! Durable storage for maintained stratified databases: an append-only
//! write-ahead log ([`wal`]) plus atomic snapshots ([`snapshot`]), combined
//! by [`Store`] into an open/commit/compact lifecycle.
//!
//! The store is deliberately **content-agnostic**: WAL data records and
//! snapshot payloads are opaque byte strings. The maintenance layer
//! (`strata_core::durable`) owns their encoding — updates, the program,
//! the model, and the per-fact support dump — through the
//! `strata_datalog::wire` codec. This keeps the crate dependency order
//! acyclic (`store` sits below `core`) and the file formats reusable.
//!
//! ## On-disk layout
//!
//! A store is a directory:
//!
//! ```text
//! <dir>/snapshot.snap      the full belief state at WAL position `seq`
//! <dir>/snapshot.delta-<k> incremental snapshots chained on the base, k = 1..
//! <dir>/wal.log            BEGIN/DATA/COMMIT|ABORT transactions after it
//! ```
//!
//! ## The snapshot chain
//!
//! A **full** snapshot covers everything up to its `seq`. An
//! **incremental** checkpoint ([`Store::write_delta_snapshot`]) appends a
//! [`DeltaSnapshot`] file instead: `snapshot.delta-1` extends the base,
//! `snapshot.delta-2` extends `delta-1`, and so on; each link records the
//! `seq` of the link it extends (`prev_seq`). The chain's **tip** `seq` is
//! what the WAL is truncated against. A later full snapshot resets the
//! chain: base renamed first, then the delta files deleted, then the WAL
//! truncated.
//!
//! ## Recovery
//!
//! [`Store::open`] = read the base snapshot, then follow the delta chain
//! link by link (`delta-1`, `delta-2`, …) as long as each file's
//! `prev_seq` equals the running tip; replay the WAL; truncate any torn
//! tail; hand back the committed transactions with `seq >` the chain tip —
//! exactly the suffix the chain does not cover. Crash windows are benign
//! by ordering:
//!
//! * between "snapshot (full or delta) renamed" and "WAL truncated": the
//!   stale WAL prefix is skipped by sequence number;
//! * between "full snapshot renamed" and "delta files deleted": the
//!   leftover deltas predate the new base (`seq ≤ base.seq`), are detected
//!   by the `prev_seq` mismatch, ignored, and removed.
//!
//! A `prev_seq` mismatch where the delta claims coverage *beyond* the base
//! (`seq > base.seq`) cannot arise from any crash ordering and is reported
//! as corruption.
//!
//! ## Observability
//!
//! The WAL reports into the process-wide `strata_obs` registry: fsync
//! count and latency (`strata_wal_fsync_total` / `strata_wal_fsync_us`),
//! bytes written (`strata_wal_bytes_written_total`), and a
//! `wal_quarantine` event whenever recovery quarantines a corrupt
//! segment. Syncs performed inside a service group commit also stamp the
//! fsync stage of the active pipeline trace span.

pub mod faults;
pub mod frame;
pub mod manifest;
pub mod policy;
pub mod snapshot;
pub mod wal;

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use faults::{FaultInjector, FaultPlan, FaultPoint, FaultSpec};
pub use frame::crc32;
pub use manifest::ShardManifest;
pub use policy::{CompactionPolicy, PolicyParseError};
pub use snapshot::{DeltaSnapshot, Snapshot, SnapshotError};
pub use wal::{Durability, Wal, WalReplay, WalTxn};

/// File name of the snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.snap";

/// File-name prefix of incremental snapshots: the chain is
/// `snapshot.delta-1`, `snapshot.delta-2`, … in link order.
pub const DELTA_FILE_PREFIX: &str = "snapshot.delta-";

/// The path of chain link `k` (1-based) inside `dir`.
fn delta_path(dir: &Path, k: u64) -> PathBuf {
    dir.join(format!("{DELTA_FILE_PREFIX}{k}"))
}

/// Best-effort removal of chain links from `from` (1-based) upward,
/// stopping at the first missing file.
fn remove_deltas_from(dir: &Path, from: u64) {
    let mut k = from;
    while std::fs::remove_file(delta_path(dir, k)).is_ok() {
        k += 1;
    }
}

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// File name of the single-writer lock inside a store directory.
pub const LOCK_FILE: &str = "store.lock";

/// Why a store failed to open or persist.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The snapshot file exists but cannot be decoded.
    Corrupt(String),
    /// Another live process holds the store open.
    Locked {
        /// The pid recorded in the lock file.
        pid: u32,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::Locked { pid } => {
                write!(f, "store is locked by another live process (pid {pid})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> StoreError {
        match e {
            SnapshotError::Io(e) => StoreError::Io(e),
            SnapshotError::Corrupt(msg) => StoreError::Corrupt(msg.to_string()),
        }
    }
}

/// What [`Store::open`] recovered.
#[derive(Debug)]
pub struct Recovered {
    /// The base snapshot, if one was ever written.
    pub snapshot: Option<Snapshot>,
    /// The delta chain on top of the base, in link order (empty if the
    /// last checkpoint was full, or none was ever taken).
    pub deltas: Vec<DeltaSnapshot>,
    /// Committed transactions not covered by the snapshot chain, in log
    /// order.
    pub committed: Vec<WalTxn>,
    /// Whether a torn WAL tail (crash evidence) was truncated away.
    pub torn_tail: bool,
    /// Where a mid-file-corrupt WAL image was quarantined, if corruption
    /// (damage *before* the committed suffix, not a torn tail) was found.
    pub quarantined: Option<PathBuf>,
}

/// An open durable store: one snapshot plus the WAL of transactions since.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    next_seq: u64,
    /// Sequence number the snapshot chain's tip covers (0 = none).
    snapshot_seq: u64,
    /// Number of delta links currently in the snapshot chain.
    chain_len: u64,
    /// This store's lock-file content; Drop releases the lock only while
    /// it still holds it (same-process re-entry hands the lock to the
    /// newest opener).
    lock_token: String,
    /// Armed fault injector shared with the WAL, if any.
    faults: Option<Arc<FaultInjector>>,
}

/// Distinguishes multiple stores opened by one process in the lock file.
static LOCK_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Whether the lock-holding process is still alive. On Linux this is a
/// `/proc` probe; elsewhere liveness cannot be checked cheaply, so a held
/// lock is conservatively treated as live (delete the lock file manually
/// after a crash).
fn lock_holder_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        std::path::Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Claims the store's single-writer lock via an atomic `O_EXCL` create:
/// refuses if the lock file names a different, still-live process; steals
/// stale locks (dead pid — the crash case). Re-entry from the same process
/// is allowed and transfers the lock to the newest opener (e.g. a strategy
/// switch opens the new engine before dropping the old): in-process
/// coordination is the caller's job, the lock guards *processes*.
fn acquire_lock(dir: &std::path::Path) -> Result<String, StoreError> {
    let path = dir.join(LOCK_FILE);
    let my_pid = std::process::id();
    let token =
        format!("{my_pid}:{}\n", LOCK_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
    for _ in 0..16 {
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                use std::io::Write;
                f.write_all(token.as_bytes())?;
                return Ok(token);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let held = std::fs::read_to_string(&path).unwrap_or_default();
                let pid = held.trim().split(':').next().and_then(|p| p.parse::<u32>().ok());
                match pid {
                    Some(pid) if pid != my_pid && lock_holder_alive(pid) => {
                        return Err(StoreError::Locked { pid });
                    }
                    // Same process (re-entry) or dead holder: take over.
                    // Remove-then-retry keeps the common path atomic; two
                    // simultaneous stealers race on the `create_new`, and
                    // the loser loops back to re-examine.
                    _ => {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(StoreError::Io(std::io::Error::other("could not acquire store lock (livelock)")))
}

impl Drop for Store {
    fn drop(&mut self) {
        let path = self.dir.join(LOCK_FILE);
        // Release only a lock this store still owns: after same-process
        // re-entry the newer Store holds it, and removing it out from
        // under them would let a second process in.
        if std::fs::read_to_string(&path).is_ok_and(|held| held == self.lock_token) {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Store {
    /// Opens (creating if missing) the store directory and performs
    /// recovery. The returned [`Recovered`] carries everything needed to
    /// rebuild the in-memory state; the [`Store`] is ready for appends.
    ///
    /// Single-writer: a lock file refuses concurrent opens from other live
    /// processes (interleaved appends from two writers would corrupt the
    /// WAL); a lock left by a dead process is stolen.
    pub fn open(
        dir: impl Into<PathBuf>,
        durability: Durability,
    ) -> Result<(Store, Recovered), StoreError> {
        Self::open_with(dir, durability, None)
    }

    /// [`Store::open`] with an optional armed fault injector threaded into
    /// the WAL and snapshot I/O (see [`faults`]).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        durability: Durability,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<(Store, Recovered), StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Persist the directory entries themselves: a fresh store whose
        // parent dirent only lives in the page cache can vanish wholesale
        // on power loss, taking "durably committed" transactions with it.
        File::open(&dir)?.sync_all()?;
        if let Some(parent) = dir.parent().filter(|p| !p.as_os_str().is_empty()) {
            // Best-effort (the parent may not be openable, e.g. `/`).
            if let Ok(f) = File::open(parent) {
                let _ = f.sync_all();
            }
        }
        let lock_token = acquire_lock(&dir)?;
        let recover = || -> Result<(Store, Recovered), StoreError> {
            let snapshot = Snapshot::read(&dir.join(SNAPSHOT_FILE))?;
            let base_seq = snapshot.as_ref().map_or(0, |s| s.seq);
            // Follow the delta chain while each link joins the running
            // tip. A mismatched link that claims no coverage beyond the
            // base is a leftover from the full-snapshot crash window
            // (base renamed, deltas not yet deleted): drop it and the
            // rest of the chain. A mismatched link *beyond* the base has
            // no benign explanation.
            let mut deltas = Vec::new();
            let mut snapshot_seq = base_seq;
            let mut k = 1;
            while let Some(delta) = DeltaSnapshot::read(&delta_path(&dir, k))? {
                if delta.prev_seq == snapshot_seq && delta.seq > snapshot_seq {
                    snapshot_seq = delta.seq;
                    deltas.push(delta);
                    k += 1;
                } else if delta.seq <= base_seq {
                    remove_deltas_from(&dir, k);
                    break;
                } else {
                    return Err(StoreError::Corrupt(format!(
                        "snapshot chain broken at delta-{k}: link covers seq {} on prev {} \
                         but the chain tip is {snapshot_seq}",
                        delta.seq, delta.prev_seq
                    )));
                }
            }
            let chain_len = deltas.len() as u64;
            let (wal, replay) = Wal::open_with(dir.join(WAL_FILE), durability, faults.clone())?;
            let mut last_seq = snapshot_seq;
            let mut committed = Vec::new();
            for txn in replay.txns {
                last_seq = last_seq.max(txn.seq);
                if txn.committed && txn.seq > snapshot_seq {
                    committed.push(txn);
                }
            }
            let store = Store {
                dir: dir.clone(),
                wal,
                next_seq: last_seq + 1,
                snapshot_seq,
                chain_len,
                lock_token: lock_token.clone(),
                faults: faults.clone(),
            };
            Ok((
                store,
                Recovered {
                    snapshot,
                    deltas,
                    committed,
                    torn_tail: replay.torn_tail,
                    quarantined: replay.quarantined,
                },
            ))
        };
        let result = recover();
        if result.is_err() {
            // Failed after claiming the lock (e.g. corrupt snapshot): no
            // Store exists to release it on drop, so release it here.
            let _ = std::fs::remove_file(dir.join(LOCK_FILE));
        }
        result
    }

    /// Begins a transaction over `records`, appending BEGIN and the data
    /// frames (buffered; nothing is durable yet). `kind` is an opaque
    /// caller byte handed back by recovery with the transaction. Returns
    /// the sequence number to pass to [`Store::commit`] or [`Store::abort`].
    pub fn begin(&mut self, records: &[Vec<u8>], kind: u8) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wal.begin(seq, kind);
        for r in records {
            self.wal.data(r);
        }
        seq
    }

    /// Durably commits the open transaction.
    pub fn commit(&mut self, seq: u64) -> Result<(), StoreError> {
        self.wal.commit(seq).map_err(StoreError::Io)
    }

    /// Durably records the open transaction as rejected.
    pub fn abort(&mut self, seq: u64) -> Result<(), StoreError> {
        self.wal.abort(seq).map_err(StoreError::Io)
    }

    /// Drops an open transaction without writing a terminator (used when an
    /// I/O failure makes the outcome unknowable; replay discards it).
    pub fn discard(&mut self) {
        self.wal.discard_open();
    }

    /// Writes a full snapshot covering everything committed so far, resets
    /// the delta chain, then empties the WAL — compaction. Crash-ordering:
    /// the snapshot rename lands first, then the chain's delta files are
    /// deleted, then the WAL is truncated; recovery tolerates a crash
    /// anywhere in that sequence (stale deltas and stale WAL entries are
    /// both skipped).
    pub fn write_snapshot(&mut self, meta: &str, payload: Vec<u8>) -> Result<(), StoreError> {
        if let Some(f) = &self.faults {
            if f.fires(FaultPoint::SnapshotFsync).is_some() {
                // Snapshot write failure, before anything lands on disk:
                // the previous snapshot chain and the WAL are untouched,
                // so the store remains fully recoverable.
                return Err(StoreError::Io(std::io::Error::other(
                    "injected fault: snapshot fsync failure",
                )));
            }
        }
        let seq = self.next_seq - 1;
        let snap = Snapshot { seq, meta: meta.to_string(), payload };
        snap.write_atomic(&self.dir.join(SNAPSHOT_FILE))?;
        remove_deltas_from(&self.dir, 1);
        self.snapshot_seq = seq;
        self.chain_len = 0;
        self.wal.truncate_all()?;
        Ok(())
    }

    /// Appends an incremental snapshot to the chain: `payload` must encode
    /// the state *changes* since the current chain tip
    /// ([`Store::snapshot_seq`]). The delta file lands atomically, then
    /// the WAL is emptied — the same crash-ordering guarantee as
    /// [`Store::write_snapshot`]. A no-op (`Ok`) if nothing has been
    /// committed past the tip, so empty links never enter the chain.
    pub fn write_delta_snapshot(&mut self, meta: &str, payload: Vec<u8>) -> Result<(), StoreError> {
        let seq = self.next_seq - 1;
        if seq == self.snapshot_seq {
            return Ok(());
        }
        let delta =
            DeltaSnapshot { seq, prev_seq: self.snapshot_seq, meta: meta.to_string(), payload };
        delta.write_atomic(&delta_path(&self.dir, self.chain_len + 1))?;
        if let Some(f) = &self.faults {
            if f.fires(FaultPoint::SnapshotDelta).is_some() {
                // The delta is already on disk but the WAL still holds the
                // transactions it covers — the mid-incremental-checkpoint
                // crash window. Recovery reads the delta and skips the
                // covered WAL prefix by sequence number; this process
                // keeps its pre-checkpoint accounting (the checkpoint
                // *failed* from its point of view).
                return Err(StoreError::Io(std::io::Error::other(
                    "injected fault: delta snapshot failure after rename",
                )));
            }
        }
        self.snapshot_seq = seq;
        self.chain_len += 1;
        self.wal.truncate_all()?;
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes of terminated transactions currently in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Terminated transactions currently in the WAL (committed + aborted,
    /// replayed ones included). The group-commit observable: one
    /// `begin`/`commit` covering a whole coalesced group counts once, no
    /// matter how many updates the group carried.
    pub fn wal_txns(&self) -> u64 {
        self.wal.txn_count()
    }

    /// The sequence number the snapshot chain's tip covers (0 = no
    /// snapshot yet).
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Number of delta links currently in the snapshot chain (0 right
    /// after a full snapshot, or when none was ever taken).
    pub fn chain_len(&self) -> u64 {
        self.chain_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strata_store_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_store_recovers_empty() {
        let dir = tmpdir("fresh");
        let (store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.committed.is_empty());
        assert!(!rec.torn_tail);
        assert_eq!(store.wal_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transactions_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            assert_eq!(store.wal_txns(), 0);
            let seq = store.begin(&[b"u1".to_vec(), b"u2".to_vec()], 0);
            store.commit(seq).unwrap();
            let seq = store.begin(&[b"rejected".to_vec()], 0);
            store.abort(seq).unwrap();
            assert_eq!(store.wal_txns(), 2, "one txn per terminator, not per record");
        }
        let (store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(rec.committed.len(), 1, "aborted txn not replayed");
        assert_eq!(rec.committed[0].records, vec![b"u1".to_vec(), b"u2".to_vec()]);
        assert_eq!(store.wal_txns(), 2, "replayed terminated txns are counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_resets_wal_and_replay_skips_covered_seqs() {
        let dir = tmpdir("snap");
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            let seq = store.begin(&[b"before".to_vec()], 0);
            store.commit(seq).unwrap();
            store.write_snapshot("cascade", b"state-at-1".to_vec()).unwrap();
            assert_eq!(store.wal_bytes(), 0);
            let seq = store.begin(&[b"after".to_vec()], 0);
            store.commit(seq).unwrap();
        }
        let (_, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.meta, "cascade");
        assert_eq!(snap.payload, b"state-at-1");
        assert_eq!(rec.committed.len(), 1);
        assert_eq!(rec.committed[0].records, vec![b"after".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_wal_after_snapshot_crash_is_skipped() {
        // Crash between snapshot rename and WAL truncate: simulate by
        // writing the snapshot file directly, leaving the WAL intact.
        let dir = tmpdir("stale");
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            let seq = store.begin(&[b"covered".to_vec()], 0);
            store.commit(seq).unwrap();
        }
        Snapshot { seq: 1, meta: "m".into(), payload: b"p".to_vec() }
            .write_atomic(&dir.join(SNAPSHOT_FILE))
            .unwrap();
        let (mut store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert!(rec.committed.is_empty(), "covered txn skipped by seq");
        // New sequence numbers continue past the snapshot.
        let seq = store.begin(&[b"new".to_vec()], 0);
        assert_eq!(seq, 2);
        store.commit(seq).unwrap();
        let (_, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(rec.committed.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_chain_survives_reopen_and_resets_on_full_snapshot() {
        let dir = tmpdir("chain");
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            let seq = store.begin(&[b"a".to_vec()], 0);
            store.commit(seq).unwrap();
            store.write_snapshot("m", b"base".to_vec()).unwrap();
            let seq = store.begin(&[b"b".to_vec()], 0);
            store.commit(seq).unwrap();
            store.write_delta_snapshot("m", b"d1".to_vec()).unwrap();
            assert_eq!(store.chain_len(), 1);
            assert_eq!(store.wal_bytes(), 0, "delta checkpoint empties the WAL");
            // An empty-coverage delta is skipped, not written.
            store.write_delta_snapshot("m", b"nothing".to_vec()).unwrap();
            assert_eq!(store.chain_len(), 1);
            let seq = store.begin(&[b"c".to_vec()], 0);
            store.commit(seq).unwrap();
            store.write_delta_snapshot("m", b"d2".to_vec()).unwrap();
            assert_eq!(store.chain_len(), 2);
            let seq = store.begin(&[b"tail".to_vec()], 0);
            store.commit(seq).unwrap();
        }
        {
            let (store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
            assert_eq!(rec.snapshot.as_ref().unwrap().payload, b"base");
            let payloads: Vec<&[u8]> = rec.deltas.iter().map(|d| d.payload.as_slice()).collect();
            assert_eq!(payloads, vec![b"d1".as_slice(), b"d2".as_slice()]);
            assert_eq!(store.chain_len(), 2);
            assert_eq!(rec.committed.len(), 1, "only the post-chain tail replays");
            assert_eq!(rec.committed[0].records, vec![b"tail".to_vec()]);
        }
        // A full snapshot deletes the chain.
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            store.write_snapshot("m", b"base2".to_vec()).unwrap();
            assert_eq!(store.chain_len(), 0);
        }
        assert!(!delta_path(&dir, 1).exists() && !delta_path(&dir, 2).exists());
        let (_, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert!(rec.deltas.is_empty());
        assert_eq!(rec.snapshot.unwrap().payload, b"base2");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_deltas_after_full_snapshot_crash_are_ignored_and_removed() {
        // Crash between "full snapshot renamed" and "delta files deleted":
        // simulate by writing the base directly over a live chain.
        let dir = tmpdir("chain_stale");
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            let seq = store.begin(&[b"a".to_vec()], 0);
            store.commit(seq).unwrap();
            store.write_delta_snapshot("m", b"d1".to_vec()).unwrap();
        }
        Snapshot { seq: 5, meta: "m".into(), payload: b"newbase".to_vec() }
            .write_atomic(&dir.join(SNAPSHOT_FILE))
            .unwrap();
        let (store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert!(rec.deltas.is_empty(), "stale delta not replayed");
        assert_eq!(store.snapshot_seq(), 5);
        assert_eq!(store.chain_len(), 0);
        assert!(!delta_path(&dir, 1).exists(), "stale delta cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_chain_link_is_corrupt() {
        let dir = tmpdir("chain_broken");
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            let seq = store.begin(&[b"a".to_vec()], 0);
            store.commit(seq).unwrap();
        }
        // A delta claiming coverage beyond the (absent) base on a prev it
        // never had: no crash ordering produces this.
        DeltaSnapshot { seq: 9, prev_seq: 7, meta: "m".into(), payload: vec![] }
            .write_atomic(&delta_path(&dir, 1))
            .unwrap();
        match Store::open(&dir, Durability::Fsync) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("chain broken"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The failed open released the lock.
        assert!(!dir.join(LOCK_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_fault_leaves_recoverable_mid_checkpoint_state() {
        // The snap-delta fault: delta renamed, WAL not truncated. The
        // writer sees an error; a reopen recovers through the delta and
        // skips the covered WAL prefix.
        let dir = tmpdir("chain_fault");
        let inj = Arc::new(FaultPlan::once(FaultPoint::SnapshotDelta, 1).arm());
        {
            let (mut store, _) =
                Store::open_with(&dir, Durability::Fsync, Some(inj.clone())).unwrap();
            let seq = store.begin(&[b"a".to_vec()], 0);
            store.commit(seq).unwrap();
            let err = store.write_delta_snapshot("m", b"d1".to_vec()).unwrap_err();
            assert!(err.to_string().contains("injected fault"), "{err}");
            assert_eq!(store.chain_len(), 0, "failed checkpoint not counted");
            assert!(store.wal_bytes() > 0, "WAL untouched by the failed checkpoint");
        }
        let (store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(rec.deltas.len(), 1, "orphaned delta recovered as the chain tip");
        assert_eq!(rec.deltas[0].payload, b"d1");
        assert!(rec.committed.is_empty(), "covered WAL prefix skipped by seq");
        assert_eq!(store.chain_len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_refuses_live_foreign_pid_and_steals_stale() {
        let dir = tmpdir("lock");
        {
            let (_store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            assert!(dir.join(LOCK_FILE).exists());
            // Same process re-entry is allowed (strategy-switch pattern).
            let second = Store::open(&dir, Durability::Fsync);
            assert!(second.is_ok());
        }
        // Both stores dropped: the lock is released.
        assert!(!dir.join(LOCK_FILE).exists());
        // A lock held by a live foreign process (pid 1 on Linux) refuses.
        std::fs::write(dir.join(LOCK_FILE), "1\n").unwrap();
        match Store::open(&dir, Durability::Fsync) {
            Err(StoreError::Locked { pid: 1 }) => {}
            other => panic!("expected Locked, got {other:?}"),
        }
        // A stale lock (dead pid) is stolen.
        std::fs::write(dir.join(LOCK_FILE), "999999999\n").unwrap();
        assert!(Store::open(&dir, Durability::Fsync).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reentry_transfers_lock_to_newest_opener() {
        // The strategy-switch pattern: a second same-process open takes the
        // lock over; dropping the *older* store must not release it.
        let dir = tmpdir("lock_reentry");
        let (older, _) = Store::open(&dir, Durability::Fsync).unwrap();
        let (newer, _) = Store::open(&dir, Durability::Fsync).unwrap();
        drop(older);
        assert!(dir.join(LOCK_FILE).exists(), "newest opener still holds the lock");
        drop(newer);
        assert!(!dir.join(LOCK_FILE).exists(), "owner's drop releases it");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_reported_and_dropped() {
        let dir = tmpdir("torn");
        {
            let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
            let seq = store.begin(&[b"good".to_vec()], 0);
            store.commit(seq).unwrap();
        }
        // Append garbage (a torn record).
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(dir.join(WAL_FILE)).unwrap();
        f.write_all(&[0x55; 5]).unwrap();
        drop(f);
        let (store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.committed.len(), 1);
        // The tail is gone from disk.
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), store.wal_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
