//! The append-only write-ahead log.
//!
//! Record payloads (inside [`crate::frame`] frames):
//!
//! ```text
//! BEGIN  ::= 0x01 seq:u64 kind:u8
//! DATA   ::= 0x02 bytes…          (opaque to the store; one update each)
//! COMMIT ::= 0x03 seq:u64
//! ABORT  ::= 0x04 seq:u64
//! ```
//!
//! `kind` is an opaque caller byte replayed back with the transaction (the
//! maintenance layer uses it to record which entry point — single apply or
//! batch — produced the transaction, so recovery replays through the same
//! code path).
//!
//! A transaction is `BEGIN data* (COMMIT | ABORT)`. Replay applies only
//! committed transactions; an `ABORT` records a rejected batch (the
//! engine-level "reject leaves the engine unchanged" contract, made
//! durable), and a transaction with no terminator — the torn tail a crash
//! mid-batch leaves — is discarded and truncated away on open, so recovery
//! lands exactly on the pre-batch state.
//!
//! Durability: appends are buffered in the OS page cache; `commit` and
//! `abort` optionally `fsync` (see [`Durability`]). A transaction is
//! considered applied only once its terminator frame is on disk, so the
//! single fsync at the terminator is enough for crash safety.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::frame::{read_frame, write_frame, FrameRead};

/// Whether terminator records are fsynced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Durability {
    /// `fsync` on every commit/abort — survives power loss.
    #[default]
    Fsync,
    /// Leave flushing to the OS — survives process crash only. For
    /// benchmarks and tests.
    Buffered,
}

/// One replayed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalTxn {
    /// The sequence number from the BEGIN/terminator records.
    pub seq: u64,
    /// The caller's opaque kind byte from the BEGIN record.
    pub kind: u8,
    /// The DATA payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// `true` for COMMIT, `false` for ABORT.
    pub committed: bool,
}

/// What replay found.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Terminated transactions, in log order (aborted ones included, marked).
    pub txns: Vec<WalTxn>,
    /// Bytes of intact, terminated-transaction prefix; everything after —
    /// torn frames or an unterminated transaction — was truncated on open.
    pub valid_len: u64,
    /// Whether a torn tail (crash evidence) was found and dropped.
    pub torn_tail: bool,
}

const TAG_BEGIN: u8 = 1;
const TAG_DATA: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;

/// The append-only log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    durability: Durability,
    /// Bytes appended since the last terminator, so an abandoned
    /// transaction (e.g. an I/O error mid-append) never counts as length.
    pending: Vec<u8>,
    /// Terminated transactions currently in the file (replayed ones plus
    /// those committed/aborted since open; reset by [`Wal::truncate_all`]).
    /// The group-commit observable: a service that coalesces `k` updates
    /// into one transaction grows this by 1, not `k`.
    txns: u64,
    /// Set when a flush failed partway: the file may hold a partial frame
    /// at an unknown offset, so any further append could interleave with
    /// the garbage and corrupt *later* transactions. A poisoned log only
    /// errors; reopening (which truncates the torn region) clears it.
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if missing) the log at `path`, replays it, and
    /// truncates any torn tail so subsequent appends start on a record
    /// boundary.
    pub fn open(
        path: impl Into<PathBuf>,
        durability: Durability,
    ) -> std::io::Result<(Wal, WalReplay)> {
        let path = path.into();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = Self::replay(&bytes);
        if replay.valid_len < bytes.len() as u64 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        // `set_len` does not move the cursor: position appends explicitly,
        // or a truncated file would grow a zero-filled gap.
        file.seek(SeekFrom::Start(replay.valid_len))?;
        let wal = Wal {
            file,
            path,
            len: replay.valid_len,
            durability,
            pending: Vec::new(),
            txns: replay.txns.len() as u64,
            poisoned: false,
        };
        Ok((wal, replay))
    }

    /// Decodes `bytes` into terminated transactions plus the intact prefix
    /// length. Pure, so crash-simulation tests can call it on arbitrary
    /// prefixes.
    pub fn replay(bytes: &[u8]) -> WalReplay {
        let mut out = WalReplay::default();
        let mut at = 0usize;
        // The currently open (BEGIN seen, not yet terminated) transaction.
        let mut open: Option<(u64, u8, Vec<Vec<u8>>)> = None;
        loop {
            match read_frame(bytes, at) {
                FrameRead::End => break,
                FrameRead::Torn => {
                    out.torn_tail = true;
                    break;
                }
                FrameRead::Ok { payload, next } => {
                    let Some((&tag, body)) = payload.split_first() else {
                        out.torn_tail = true;
                        break;
                    };
                    match tag {
                        TAG_BEGIN if body.len() == 9 => {
                            // A BEGIN while a transaction is open means the
                            // previous one was never terminated: drop it.
                            let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
                            open = Some((seq, body[8], Vec::new()));
                        }
                        TAG_DATA if open.is_some() => {
                            open.as_mut().unwrap().2.push(body.to_vec());
                        }
                        TAG_COMMIT | TAG_ABORT if body.len() == 8 => {
                            let seq = u64::from_le_bytes(body.try_into().unwrap());
                            if let Some((begin_seq, kind, records)) = open.take() {
                                if begin_seq == seq {
                                    out.txns.push(WalTxn {
                                        seq,
                                        kind,
                                        records,
                                        committed: tag == TAG_COMMIT,
                                    });
                                    // Only a terminated transaction advances
                                    // the intact prefix.
                                    out.valid_len = next as u64;
                                }
                            }
                        }
                        _ => {
                            // Unknown tag or malformed body: treat like a
                            // torn record.
                            out.torn_tail = true;
                            return out;
                        }
                    }
                    at = next;
                }
            }
        }
        if open.is_some() {
            out.torn_tail = true;
        }
        out
    }

    fn push_record(&mut self, tag: u8, body: &[u8]) {
        if 1 + body.len() > crate::frame::MAX_FRAME_LEN {
            // An unframeable record: fail the whole transaction at its
            // terminator instead of panicking inside `write_frame`.
            self.pending.clear();
            self.poisoned = true;
            return;
        }
        let mut payload = Vec::with_capacity(1 + body.len());
        payload.push(tag);
        payload.extend_from_slice(body);
        write_frame(&mut self.pending, &payload);
    }

    /// Starts a transaction; `kind` is an opaque caller byte returned by
    /// replay.
    pub fn begin(&mut self, seq: u64, kind: u8) {
        let mut body = [0u8; 9];
        body[..8].copy_from_slice(&seq.to_le_bytes());
        body[8] = kind;
        self.push_record(TAG_BEGIN, &body);
    }

    /// Appends one opaque data record to the open transaction.
    pub fn data(&mut self, bytes: &[u8]) {
        self.push_record(TAG_DATA, bytes);
    }

    /// Terminates the open transaction as committed; the write is durable
    /// (per the [`Durability`] policy) when this returns.
    pub fn commit(&mut self, seq: u64) -> std::io::Result<()> {
        self.push_record(TAG_COMMIT, &seq.to_le_bytes());
        self.flush_pending()?;
        self.txns += 1;
        Ok(())
    }

    /// Terminates the open transaction as rejected.
    pub fn abort(&mut self, seq: u64) -> std::io::Result<()> {
        self.push_record(TAG_ABORT, &seq.to_le_bytes());
        self.flush_pending()?;
        self.txns += 1;
        Ok(())
    }

    fn flush_pending(&mut self) -> std::io::Result<()> {
        if self.poisoned {
            // Drop the unwritable frames so repeated attempts don't grow
            // the buffer; `truncate_all` (compaction) or a reopen heals.
            self.pending.clear();
            return Err(std::io::Error::other(
                "WAL poisoned by an earlier write failure or oversized record",
            ));
        }
        let result = self.file.write_all(&self.pending).and_then(|()| {
            if self.durability == Durability::Fsync {
                self.file.sync_data()?;
            }
            Ok(())
        });
        match result {
            Ok(()) => {
                self.len += self.pending.len() as u64;
                self.pending.clear();
                Ok(())
            }
            Err(e) => {
                // An unknown prefix of `pending` may have reached the file;
                // re-sending it (or appending anything after it) would
                // corrupt the log mid-file and take later transactions down
                // with it at the next replay. Poison: replay of the current
                // on-disk bytes still recovers everything terminated before
                // this transaction.
                self.pending.clear();
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Drops an un-terminated transaction that will not be completed (e.g.
    /// the engine failed before a terminator could be chosen). Nothing was
    /// written to the file yet, so this is purely in-memory.
    pub fn discard_open(&mut self) {
        self.pending.clear();
    }

    /// Empties the log (after a snapshot made its contents redundant).
    pub fn truncate_all(&mut self) -> std::io::Result<()> {
        self.pending.clear();
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        self.txns = 0;
        // Emptying the file discards any partial garbage a failed flush
        // left behind, so the log is clean again.
        self.poisoned = false;
        Ok(())
    }

    /// Bytes of terminated transactions currently in the file.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Terminated transactions currently in the file.
    pub fn txn_count(&self) -> u64 {
        self.txns
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strata_wal_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn commit_abort_replay() {
        let dir = tmpdir("car");
        let path = dir.join("w.wal");
        {
            let (mut wal, replay) = Wal::open(&path, Durability::Fsync).unwrap();
            assert!(replay.txns.is_empty());
            wal.begin(1, 0);
            wal.data(b"alpha");
            wal.data(b"beta");
            wal.commit(1).unwrap();
            wal.begin(2, 0);
            wal.data(b"gamma");
            wal.abort(2).unwrap();
        }
        let (_, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert_eq!(replay.txns.len(), 2);
        assert_eq!(replay.txns[0].records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(replay.txns[0].committed);
        assert!(!replay.txns[1].committed);
        assert!(!replay.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unterminated_tail_is_truncated_on_open() {
        let dir = tmpdir("tail");
        let path = dir.join("w.wal");
        let committed_len;
        {
            let (mut wal, _) = Wal::open(&path, Durability::Fsync).unwrap();
            wal.begin(1, 0);
            wal.data(b"ok");
            wal.commit(1).unwrap();
            committed_len = wal.len_bytes();
            // A transaction that never terminates: force the frames to disk
            // without a terminator by writing them directly.
            wal.begin(2, 0);
            wal.data(b"torn");
            let pending = wal.pending.clone();
            wal.discard_open();
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&pending).unwrap();
        }
        assert!(std::fs::metadata(&path).unwrap().len() > committed_len);
        let (wal, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert_eq!(replay.txns.len(), 1);
        assert!(replay.torn_tail);
        assert_eq!(wal.len_bytes(), committed_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_prefix_yields_a_terminated_prefix_of_txns() {
        let dir = tmpdir("prefix");
        let path = dir.join("w.wal");
        let mut boundaries = vec![0u64];
        {
            let (mut wal, _) = Wal::open(&path, Durability::Buffered).unwrap();
            for seq in 1..=4u64 {
                wal.begin(seq, 0);
                wal.data(format!("payload-{seq}").as_bytes());
                wal.commit(seq).unwrap();
                boundaries.push(wal.len_bytes());
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..=bytes.len() {
            let replay = Wal::replay(&bytes[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(replay.txns.len(), expect, "cut {cut}");
            assert_eq!(replay.valid_len, boundaries[expect], "cut {cut}");
            for (i, t) in replay.txns.iter().enumerate() {
                assert_eq!(t.seq, i as u64 + 1);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_all_empties_the_log() {
        let dir = tmpdir("trunc");
        let path = dir.join("w.wal");
        let (mut wal, _) = Wal::open(&path, Durability::Fsync).unwrap();
        wal.begin(1, 0);
        wal.commit(1).unwrap();
        assert!(wal.len_bytes() > 0);
        wal.truncate_all().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
