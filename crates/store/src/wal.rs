//! The append-only write-ahead log.
//!
//! Record payloads (inside [`crate::frame`] frames):
//!
//! ```text
//! BEGIN  ::= 0x01 seq:u64 kind:u8
//! DATA   ::= 0x02 bytes…          (opaque to the store; one update each)
//! COMMIT ::= 0x03 seq:u64
//! ABORT  ::= 0x04 seq:u64
//! ```
//!
//! `kind` is an opaque caller byte replayed back with the transaction (the
//! maintenance layer uses it to record which entry point — single apply or
//! batch — produced the transaction, so recovery replays through the same
//! code path).
//!
//! A transaction is `BEGIN data* (COMMIT | ABORT)`. Replay applies only
//! committed transactions; an `ABORT` records a rejected batch (the
//! engine-level "reject leaves the engine unchanged" contract, made
//! durable), and a transaction with no terminator — the torn tail a crash
//! mid-batch leaves — is discarded and truncated away on open, so recovery
//! lands exactly on the pre-batch state.
//!
//! Durability: appends are buffered in the OS page cache; `commit` and
//! `abort` optionally `fsync` (see [`Durability`]). A transaction is
//! considered applied only once its terminator frame is on disk, so the
//! single fsync at the terminator is enough for crash safety.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::faults::{FaultInjector, FaultPoint};
use crate::frame::{read_frame, write_frame, FrameRead};

/// Registry handles for the WAL, registered once and shared by every log
/// in the process (the record path is lock-free, see `strata_obs`).
struct WalObs {
    fsync_total: Arc<strata_obs::Counter>,
    fsync_us: Arc<strata_obs::Histogram>,
    bytes_total: Arc<strata_obs::Counter>,
}

fn wal_obs() -> &'static WalObs {
    static OBS: OnceLock<WalObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = strata_obs::global();
        WalObs {
            fsync_total: r.counter("strata_wal_fsync_total"),
            fsync_us: r.histogram("strata_wal_fsync_us"),
            bytes_total: r.counter("strata_wal_bytes_written_total"),
        }
    })
}

/// Whether terminator records are fsynced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Durability {
    /// `fsync` on every commit/abort — survives power loss.
    #[default]
    Fsync,
    /// Leave flushing to the OS — survives process crash only. For
    /// benchmarks and tests.
    Buffered,
}

/// One replayed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalTxn {
    /// The sequence number from the BEGIN/terminator records.
    pub seq: u64,
    /// The caller's opaque kind byte from the BEGIN record.
    pub kind: u8,
    /// The DATA payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// `true` for COMMIT, `false` for ABORT.
    pub committed: bool,
}

/// What replay found.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Terminated transactions, in log order (aborted ones included, marked).
    pub txns: Vec<WalTxn>,
    /// Bytes of intact, terminated-transaction prefix; everything after —
    /// torn frames or an unterminated transaction — was truncated on open.
    pub valid_len: u64,
    /// Whether a torn tail (crash evidence) was found and dropped.
    pub torn_tail: bool,
    /// Whether the damage sits *inside* the log rather than at its end:
    /// an intact, well-tagged frame exists after the first torn record, so
    /// this is corruption (bit rot, interleaved writers), not the partial
    /// final append a crash leaves. [`Wal::open`] quarantines such a file
    /// instead of silently truncating it.
    pub corrupt_mid_file: bool,
    /// Where the corrupt file image was quarantined (`<wal>.corrupt-<seq>`
    /// next to the log), if `corrupt_mid_file` was detected on open.
    pub quarantined: Option<PathBuf>,
}

const TAG_BEGIN: u8 = 1;
const TAG_DATA: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;

/// The append-only log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    durability: Durability,
    /// Bytes appended since the last terminator, so an abandoned
    /// transaction (e.g. an I/O error mid-append) never counts as length.
    pending: Vec<u8>,
    /// Terminated transactions currently in the file (replayed ones plus
    /// those committed/aborted since open; reset by [`Wal::truncate_all`]).
    /// The group-commit observable: a service that coalesces `k` updates
    /// into one transaction grows this by 1, not `k`.
    txns: u64,
    /// Set when a flush failed partway: the file may hold a partial frame
    /// at an unknown offset, so any further append could interleave with
    /// the garbage and corrupt *later* transactions. A poisoned log only
    /// errors; reopening (which truncates the torn region) clears it.
    poisoned: bool,
    /// Armed fault injector, if any (see [`crate::faults`]).
    faults: Option<Arc<FaultInjector>>,
}

impl Wal {
    /// Opens (creating if missing) the log at `path`, replays it, and
    /// truncates any torn tail so subsequent appends start on a record
    /// boundary.
    pub fn open(
        path: impl Into<PathBuf>,
        durability: Durability,
    ) -> std::io::Result<(Wal, WalReplay)> {
        Self::open_with(path, durability, None)
    }

    /// [`Wal::open`] with an optional armed fault injector threaded through
    /// every subsequent I/O (and through the open itself:
    /// [`FaultPoint::WalOpenCorrupt`] flips one byte of the image as it is
    /// read back, modelling read-time CRC corruption).
    pub fn open_with(
        path: impl Into<PathBuf>,
        durability: Durability,
        faults: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<(Wal, WalReplay)> {
        let path = path.into();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if let Some(f) = &faults {
            if let Some(arg) = f.fires(FaultPoint::WalOpenCorrupt) {
                if !bytes.is_empty() {
                    let at = (arg as usize) % bytes.len();
                    bytes[at] ^= 0xFF;
                    // Make the injected corruption real on disk, so the
                    // recovery path under test sees exactly what a reopen
                    // after bit rot would.
                    file.seek(SeekFrom::Start(at as u64))?;
                    file.write_all(&[bytes[at]])?;
                    file.sync_data()?;
                }
            }
        }
        let mut replay = Self::replay(&bytes);
        if replay.corrupt_mid_file {
            // Damage inside the log, not a torn tail: preserve the full
            // corrupt image for forensics before truncating to the intact
            // prefix. Copy-then-truncate keeps `path` present and intact
            // throughout — a crash at any point either re-runs the
            // quarantine or finds the already-truncated log.
            let last_seq = replay.txns.last().map_or(0, |t| t.seq);
            let qname = match path.file_name().and_then(|n| n.to_str()) {
                Some(name) => format!("{}.corrupt-{last_seq}", name.split('.').next().unwrap()),
                None => format!("wal.corrupt-{last_seq}"),
            };
            let qpath = path.with_file_name(qname);
            let mut qfile = File::create(&qpath)?;
            qfile.write_all(&bytes)?;
            qfile.sync_data()?;
            strata_obs::trace::event(
                strata_obs::EventKind::WalQuarantine,
                qpath.display().to_string(),
            );
            replay.quarantined = Some(qpath);
        }
        if replay.valid_len < bytes.len() as u64 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        // `set_len` does not move the cursor: position appends explicitly,
        // or a truncated file would grow a zero-filled gap.
        file.seek(SeekFrom::Start(replay.valid_len))?;
        let wal = Wal {
            file,
            path,
            len: replay.valid_len,
            durability,
            pending: Vec::new(),
            txns: replay.txns.len() as u64,
            poisoned: false,
            faults,
        };
        Ok((wal, replay))
    }

    /// Decodes `bytes` into terminated transactions plus the intact prefix
    /// length. Pure, so crash-simulation tests can call it on arbitrary
    /// prefixes.
    pub fn replay(bytes: &[u8]) -> WalReplay {
        let mut out = WalReplay::default();
        let mut at = 0usize;
        // Offset of the first torn/malformed record, if any — the anchor
        // for the mid-file corruption probe below.
        let mut torn_at: Option<usize> = None;
        // The currently open (BEGIN seen, not yet terminated) transaction.
        let mut open: Option<(u64, u8, Vec<Vec<u8>>)> = None;
        loop {
            match read_frame(bytes, at) {
                FrameRead::End => break,
                FrameRead::Torn => {
                    out.torn_tail = true;
                    torn_at = Some(at);
                    break;
                }
                FrameRead::Ok { payload, next } => {
                    let Some((&tag, body)) = payload.split_first() else {
                        out.torn_tail = true;
                        torn_at = Some(at);
                        break;
                    };
                    match tag {
                        TAG_BEGIN if body.len() == 9 => {
                            // A BEGIN while a transaction is open means the
                            // previous one was never terminated: drop it.
                            let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
                            open = Some((seq, body[8], Vec::new()));
                        }
                        TAG_DATA if open.is_some() => {
                            open.as_mut().unwrap().2.push(body.to_vec());
                        }
                        TAG_COMMIT | TAG_ABORT if body.len() == 8 => {
                            let seq = u64::from_le_bytes(body.try_into().unwrap());
                            if let Some((begin_seq, kind, records)) = open.take() {
                                if begin_seq == seq {
                                    out.txns.push(WalTxn {
                                        seq,
                                        kind,
                                        records,
                                        committed: tag == TAG_COMMIT,
                                    });
                                    // Only a terminated transaction advances
                                    // the intact prefix.
                                    out.valid_len = next as u64;
                                }
                            }
                        }
                        _ => {
                            // Unknown tag or malformed body: treat like a
                            // torn record.
                            out.torn_tail = true;
                            torn_at = Some(at);
                            break;
                        }
                    }
                    at = next;
                }
            }
        }
        if open.is_some() {
            out.torn_tail = true;
        }
        // Distinguish mid-file corruption from a torn tail: a crash tears
        // only the *final* append, so nothing parseable can follow the torn
        // record. An intact, well-tagged, CRC-valid frame at any later
        // offset proves the damage sits inside previously committed bytes.
        if let Some(start) = torn_at {
            let mut probe = start + 1;
            while probe < bytes.len() {
                if let FrameRead::Ok { payload, .. } = read_frame(bytes, probe) {
                    if matches!(payload.first(), Some(&t) if (TAG_BEGIN..=TAG_ABORT).contains(&t)) {
                        out.corrupt_mid_file = true;
                        break;
                    }
                }
                probe += 1;
            }
        }
        out
    }

    fn push_record(&mut self, tag: u8, body: &[u8]) {
        if 1 + body.len() > crate::frame::MAX_FRAME_LEN {
            // An unframeable record: fail the whole transaction at its
            // terminator instead of panicking inside `write_frame`.
            self.pending.clear();
            self.poisoned = true;
            return;
        }
        let mut payload = Vec::with_capacity(1 + body.len());
        payload.push(tag);
        payload.extend_from_slice(body);
        write_frame(&mut self.pending, &payload);
    }

    /// Starts a transaction; `kind` is an opaque caller byte returned by
    /// replay.
    pub fn begin(&mut self, seq: u64, kind: u8) {
        let mut body = [0u8; 9];
        body[..8].copy_from_slice(&seq.to_le_bytes());
        body[8] = kind;
        self.push_record(TAG_BEGIN, &body);
    }

    /// Appends one opaque data record to the open transaction.
    pub fn data(&mut self, bytes: &[u8]) {
        self.push_record(TAG_DATA, bytes);
    }

    /// Terminates the open transaction as committed; the write is durable
    /// (per the [`Durability`] policy) when this returns.
    pub fn commit(&mut self, seq: u64) -> std::io::Result<()> {
        self.push_record(TAG_COMMIT, &seq.to_le_bytes());
        self.flush_pending()?;
        self.txns += 1;
        Ok(())
    }

    /// Terminates the open transaction as rejected.
    pub fn abort(&mut self, seq: u64) -> std::io::Result<()> {
        self.push_record(TAG_ABORT, &seq.to_le_bytes());
        self.flush_pending()?;
        self.txns += 1;
        Ok(())
    }

    fn flush_pending(&mut self) -> std::io::Result<()> {
        if self.poisoned {
            // Drop the unwritable frames so repeated attempts don't grow
            // the buffer; `truncate_all` (compaction) or a reopen heals.
            self.pending.clear();
            return Err(std::io::Error::other(
                "WAL poisoned by an earlier write failure or oversized record",
            ));
        }
        if let Some(f) = &self.faults {
            if let Some(keep) = f.fires(FaultPoint::WalWrite) {
                // Torn write: a strict prefix of the pending bytes reaches
                // the file (never the whole — the terminator frame must not
                // land, or the transaction would be durable while we report
                // failure), then the device "fails". Sync the prefix so a
                // reopen sees exactly what a real torn write leaves.
                let keep = (keep as usize).min(self.pending.len().saturating_sub(1));
                let _ = self.file.write_all(&self.pending[..keep]);
                let _ = self.file.sync_data();
                self.pending.clear();
                self.poisoned = true;
                return Err(std::io::Error::other("injected fault: torn WAL write"));
            }
            if f.fires(FaultPoint::WalFsync).is_some() {
                // Fsync failure modelled as "nothing from this flush became
                // durable": the pending bytes never reach the file, so the
                // caller's rollback contract (replay lands on the
                // pre-transaction state) holds under in-process reopens.
                self.pending.clear();
                self.poisoned = true;
                return Err(std::io::Error::other("injected fault: WAL fsync failure"));
            }
        }
        let result = self.file.write_all(&self.pending).and_then(|()| {
            if self.durability == Durability::Fsync {
                let start = Instant::now();
                self.file.sync_data()?;
                let obs = wal_obs();
                obs.fsync_total.inc();
                obs.fsync_us.record(start.elapsed().as_micros() as u64);
                // If a group-commit span is active on this thread, this
                // sync is its fsync stage.
                strata_obs::trace::stage(strata_obs::Stage::Fsync);
            }
            Ok(())
        });
        match result {
            Ok(()) => {
                wal_obs().bytes_total.add(self.pending.len() as u64);
                self.len += self.pending.len() as u64;
                self.pending.clear();
                Ok(())
            }
            Err(e) => {
                // An unknown prefix of `pending` may have reached the file;
                // re-sending it (or appending anything after it) would
                // corrupt the log mid-file and take later transactions down
                // with it at the next replay. Poison: replay of the current
                // on-disk bytes still recovers everything terminated before
                // this transaction.
                self.pending.clear();
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Drops an un-terminated transaction that will not be completed (e.g.
    /// the engine failed before a terminator could be chosen). Nothing was
    /// written to the file yet, so this is purely in-memory.
    pub fn discard_open(&mut self) {
        self.pending.clear();
    }

    /// Empties the log (after a snapshot made its contents redundant).
    pub fn truncate_all(&mut self) -> std::io::Result<()> {
        self.pending.clear();
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        self.txns = 0;
        // Emptying the file discards any partial garbage a failed flush
        // left behind, so the log is clean again.
        self.poisoned = false;
        Ok(())
    }

    /// Bytes of terminated transactions currently in the file.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Terminated transactions currently in the file.
    pub fn txn_count(&self) -> u64 {
        self.txns
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strata_wal_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn commit_abort_replay() {
        let dir = tmpdir("car");
        let path = dir.join("w.wal");
        {
            let (mut wal, replay) = Wal::open(&path, Durability::Fsync).unwrap();
            assert!(replay.txns.is_empty());
            wal.begin(1, 0);
            wal.data(b"alpha");
            wal.data(b"beta");
            wal.commit(1).unwrap();
            wal.begin(2, 0);
            wal.data(b"gamma");
            wal.abort(2).unwrap();
        }
        let (_, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert_eq!(replay.txns.len(), 2);
        assert_eq!(replay.txns[0].records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(replay.txns[0].committed);
        assert!(!replay.txns[1].committed);
        assert!(!replay.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unterminated_tail_is_truncated_on_open() {
        let dir = tmpdir("tail");
        let path = dir.join("w.wal");
        let committed_len;
        {
            let (mut wal, _) = Wal::open(&path, Durability::Fsync).unwrap();
            wal.begin(1, 0);
            wal.data(b"ok");
            wal.commit(1).unwrap();
            committed_len = wal.len_bytes();
            // A transaction that never terminates: force the frames to disk
            // without a terminator by writing them directly.
            wal.begin(2, 0);
            wal.data(b"torn");
            let pending = wal.pending.clone();
            wal.discard_open();
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&pending).unwrap();
        }
        assert!(std::fs::metadata(&path).unwrap().len() > committed_len);
        let (wal, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert_eq!(replay.txns.len(), 1);
        assert!(replay.torn_tail);
        assert_eq!(wal.len_bytes(), committed_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_prefix_yields_a_terminated_prefix_of_txns() {
        let dir = tmpdir("prefix");
        let path = dir.join("w.wal");
        let mut boundaries = vec![0u64];
        {
            let (mut wal, _) = Wal::open(&path, Durability::Buffered).unwrap();
            for seq in 1..=4u64 {
                wal.begin(seq, 0);
                wal.data(format!("payload-{seq}").as_bytes());
                wal.commit(seq).unwrap();
                boundaries.push(wal.len_bytes());
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..=bytes.len() {
            let replay = Wal::replay(&bytes[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(replay.txns.len(), expect, "cut {cut}");
            assert_eq!(replay.valid_len, boundaries[expect], "cut {cut}");
            for (i, t) in replay.txns.iter().enumerate() {
                assert_eq!(t.seq, i as u64 + 1);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_quarantined_not_silently_truncated() {
        let dir = tmpdir("quarantine");
        let path = dir.join("wal.log");
        let full_len;
        {
            let (mut wal, _) = Wal::open(&path, Durability::Fsync).unwrap();
            for seq in 1..=3u64 {
                wal.begin(seq, 0);
                wal.data(format!("payload-{seq}").as_bytes());
                wal.commit(seq).unwrap();
            }
            full_len = wal.len_bytes();
        }
        // Flip a byte inside the *second* transaction's frames: damage
        // before the committed suffix, with intact frames (txn 3) after it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = (bytes.len() / 3) + 4;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert!(replay.corrupt_mid_file, "intact frames after the tear = corruption");
        assert!(replay.torn_tail, "corruption also reports the tear");
        let qpath = replay.quarantined.expect("corrupt image quarantined");
        assert!(qpath.file_name().unwrap().to_str().unwrap().starts_with("wal.corrupt-"));
        assert_eq!(std::fs::read(&qpath).unwrap(), bytes, "full corrupt image preserved");
        // The live log keeps only the intact prefix (txn 1 here).
        assert_eq!(replay.txns.len(), 1);
        assert!(wal.len_bytes() < full_len);
        // Reopening the now-clean log does not re-quarantine.
        drop(wal);
        let (_, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert!(!replay.corrupt_mid_file);
        assert!(replay.quarantined.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_torn_tail_is_not_classified_as_corruption() {
        let dir = tmpdir("torn_not_corrupt");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path, Durability::Fsync).unwrap();
            wal.begin(1, 0);
            wal.data(b"ok");
            wal.commit(1).unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x77; 9]).unwrap();
        drop(f);
        let (_, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert!(replay.torn_tail);
        assert!(!replay.corrupt_mid_file, "garbage at EOF is a torn tail, not corruption");
        assert!(replay.quarantined.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fsync_failure_poisons_and_preserves_pre_txn_state() {
        use crate::faults::{FaultPlan, FaultPoint};
        let dir = tmpdir("fault_fsync");
        let path = dir.join("wal.log");
        let inj = Arc::new(FaultPlan::once(FaultPoint::WalFsync, 2).arm());
        let (mut wal, _) = Wal::open_with(&path, Durability::Fsync, Some(inj.clone())).unwrap();
        wal.begin(1, 0);
        wal.data(b"good");
        wal.commit(1).unwrap();
        let durable_len = wal.len_bytes();
        wal.begin(2, 0);
        wal.data(b"doomed");
        let err = wal.commit(2).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Poisoned: further transactions fail fast.
        wal.begin(3, 0);
        assert!(wal.commit(3).is_err());
        drop(wal);
        // Reopen (no faults): only txn 1 survives, no torn tail — the
        // failed flush never reached the file.
        let (wal, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert_eq!(replay.txns.len(), 1);
        assert!(!replay.torn_tail);
        assert_eq!(wal.len_bytes(), durable_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_leaves_a_truncatable_tail() {
        use crate::faults::{FaultPlan, FaultPoint};
        let dir = tmpdir("fault_torn");
        let path = dir.join("wal.log");
        let inj = Arc::new(FaultPlan::once(FaultPoint::WalWrite, 2).arg(16).arm());
        let (mut wal, _) = Wal::open_with(&path, Durability::Fsync, Some(inj)).unwrap();
        wal.begin(1, 0);
        wal.data(b"good");
        wal.commit(1).unwrap();
        let durable_len = wal.len_bytes();
        wal.begin(2, 0);
        wal.data(b"torn-away");
        assert!(wal.commit(2).is_err());
        drop(wal);
        // The torn prefix is on disk past the committed region…
        assert!(std::fs::metadata(&path).unwrap().len() > durable_len);
        // …and a clean reopen truncates it as a torn tail.
        let (wal, replay) = Wal::open(&path, Durability::Fsync).unwrap();
        assert_eq!(replay.txns.len(), 1);
        assert!(replay.torn_tail);
        assert!(!replay.corrupt_mid_file);
        assert_eq!(wal.len_bytes(), durable_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_open_corruption_feeds_the_quarantine_path() {
        use crate::faults::{FaultPlan, FaultPoint};
        let dir = tmpdir("fault_open");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path, Durability::Fsync).unwrap();
            for seq in 1..=3u64 {
                wal.begin(seq, 0);
                wal.data(format!("payload-{seq}").as_bytes());
                wal.commit(seq).unwrap();
            }
        }
        let file_len = std::fs::metadata(&path).unwrap().len();
        // Flip a byte one third in: inside txn 1/2, before intact frames.
        let inj = Arc::new(FaultPlan::once(FaultPoint::WalOpenCorrupt, 1).arg(file_len / 3).arm());
        let (_, replay) = Wal::open_with(&path, Durability::Fsync, Some(inj)).unwrap();
        assert!(replay.corrupt_mid_file);
        assert!(replay.quarantined.is_some());
        assert!(replay.txns.len() < 3, "the corrupted suffix is dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_all_empties_the_log() {
        let dir = tmpdir("trunc");
        let path = dir.join("w.wal");
        let (mut wal, _) = Wal::open(&path, Durability::Fsync).unwrap();
        wal.begin(1, 0);
        wal.commit(1).unwrap();
        assert!(wal.len_bytes() > 0);
        wal.truncate_all().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
