//! Deterministic fault injection for the storage and service layers.
//!
//! A [`FaultPlan`] is a pure, parseable description of *which* failure to
//! inject and *when* — "fail the 3rd WAL fsync", "tear the 1st flush after
//! 16 bytes", "panic the worker before every apply from the 2nd on". Arming
//! a plan yields a [`FaultInjector`]: a thread-safe trigger the hook sites
//! poll ([`FaultInjector::fires`]) each time execution passes a
//! [`FaultPoint`]. Because firing is keyed on deterministic hit counts —
//! never wall clocks or randomness — a failing chaos run replays exactly
//! from its plan string and seed.
//!
//! ## Plan syntax
//!
//! ```text
//! plan  ::= spec ("," spec)*
//! spec  ::= point "@" nth ["+"] [":" arg]
//! point ::= wal-fsync | wal-write | wal-open-corrupt | snap-fsync
//!         | snap-delta | panic-pre-apply | panic-post-apply
//!         | panic-mid-group
//! ```
//!
//! `nth` is the 1-based hit at which the fault fires; a trailing `+` makes
//! it **sticky** (fires on every hit from `nth` onward — the persistent
//! failure that drives read-only degradation). `arg` is an optional
//! point-specific parameter: for `wal-write` the number of bytes that reach
//! the file before the torn write fails; for `wal-open-corrupt` the byte
//! offset (mod file length) whose bits are flipped.
//!
//! ```
//! use strata_store::faults::{FaultPlan, FaultPoint};
//!
//! let plan: FaultPlan = "wal-fsync@2,panic-pre-apply@1+".parse().unwrap();
//! let inj = plan.arm();
//! assert!(inj.fires(FaultPoint::WalFsync).is_none()); // 1st hit: pass
//! assert!(inj.fires(FaultPoint::WalFsync).is_some()); // 2nd hit: fail
//! assert!(inj.fires(FaultPoint::WalFsync).is_none()); // one-shot
//! assert!(inj.fires(FaultPoint::WorkerPreApply).is_some()); // sticky
//! assert!(inj.fires(FaultPoint::WorkerPreApply).is_some());
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A place in the storage or service code where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// The fsync at a WAL commit/abort terminator fails; nothing from the
    /// pending transaction reaches the file (the caller must treat the
    /// transaction as not durable) and the log poisons itself.
    WalFsync,
    /// A WAL flush tears: only a prefix of the pending bytes (the spec's
    /// `arg`, clamped below the terminator) reaches the file before the
    /// write errors and the log poisons itself.
    WalWrite,
    /// One byte of the WAL image is flipped while reading it back at open
    /// (`arg` picks the offset, mod file length) — the read-time CRC
    /// corruption case.
    WalOpenCorrupt,
    /// Writing a snapshot fails before anything lands on disk.
    SnapshotFsync,
    /// An incremental checkpoint fails *after* the delta file has been
    /// renamed into the chain but *before* the WAL is truncated — the
    /// mid-incremental-snapshot crash window recovery must tolerate (the
    /// orphaned delta covers a WAL prefix that replay then skips by
    /// sequence number).
    SnapshotDelta,
    /// The service worker panics after taking a group but before applying
    /// it to the engine.
    WorkerPreApply,
    /// The service worker panics after the engine commit and snapshot
    /// publish but before any outcome is delivered — the ambiguous
    /// "committed but unacked" window retries must cover.
    WorkerPostApply,
    /// The service worker panics halfway through delivering a group's
    /// outcomes — some requests acked, the rest left undecided.
    WorkerMidGroup,
}

/// All points, in a fixed order that gives each a stable counter slot.
const POINTS: [FaultPoint; 8] = [
    FaultPoint::WalFsync,
    FaultPoint::WalWrite,
    FaultPoint::WalOpenCorrupt,
    FaultPoint::SnapshotFsync,
    FaultPoint::SnapshotDelta,
    FaultPoint::WorkerPreApply,
    FaultPoint::WorkerPostApply,
    FaultPoint::WorkerMidGroup,
];

impl FaultPoint {
    fn slot(self) -> usize {
        POINTS.iter().position(|&p| p == self).unwrap()
    }

    /// The name used in plan strings.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WalFsync => "wal-fsync",
            FaultPoint::WalWrite => "wal-write",
            FaultPoint::WalOpenCorrupt => "wal-open-corrupt",
            FaultPoint::SnapshotFsync => "snap-fsync",
            FaultPoint::SnapshotDelta => "snap-delta",
            FaultPoint::WorkerPreApply => "panic-pre-apply",
            FaultPoint::WorkerPostApply => "panic-post-apply",
            FaultPoint::WorkerMidGroup => "panic-mid-group",
        }
    }

    fn parse(s: &str) -> Option<FaultPoint> {
        POINTS.iter().copied().find(|p| p.name() == s)
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected fault: fire at the `nth` (1-based) hit of `point`, once or
/// (if `sticky`) on every hit from then on, passing `arg` to the hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where to fire.
    pub point: FaultPoint,
    /// 1-based hit count at which to fire.
    pub nth: u64,
    /// Fire on every hit from `nth` onward instead of exactly once.
    pub sticky: bool,
    /// Point-specific parameter (byte count, offset, …); 0 if unused.
    pub arg: u64,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.point, self.nth)?;
        if self.sticky {
            f.write_str("+")?;
        }
        if self.arg != 0 {
            write!(f, ":{}", self.arg)?;
        }
        Ok(())
    }
}

/// A parse failure for a fault-plan string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanParseError(String);

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanParseError {}

/// A deterministic set of faults to inject — pure data, cheap to clone,
/// round-trips through its string form (`FromStr`/`Display`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A one-fault plan firing at the `nth` hit of `point`.
    pub fn once(point: FaultPoint, nth: u64) -> FaultPlan {
        FaultPlan { specs: vec![FaultSpec { point, nth, sticky: false, arg: 0 }] }
    }

    /// A one-fault plan firing on every hit of `point` from the `nth` on.
    pub fn sticky(point: FaultPoint, nth: u64) -> FaultPlan {
        FaultPlan { specs: vec![FaultSpec { point, nth, sticky: true, arg: 0 }] }
    }

    /// Adds a spec (builder style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Sets the `arg` of the most recently added spec (builder style).
    pub fn arg(mut self, arg: u64) -> FaultPlan {
        if let Some(last) = self.specs.last_mut() {
            last.arg = arg;
        }
        self
    }

    /// The specs, in plan order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Arms the plan: the returned injector counts hits and fires faults.
    pub fn arm(&self) -> FaultInjector {
        FaultInjector { specs: Mutex::new(self.specs.clone()), hits: Default::default() }
    }
}

impl FromStr for FaultPlan {
    type Err = FaultPlanParseError;

    fn from_str(s: &str) -> Result<FaultPlan, FaultPlanParseError> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FaultPlan::none());
        }
        let mut specs = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (name, rest) = part
                .split_once('@')
                .ok_or_else(|| FaultPlanParseError(format!("`{part}`: expected point@nth")))?;
            let point = FaultPoint::parse(name)
                .ok_or_else(|| FaultPlanParseError(format!("`{name}`: unknown fault point")))?;
            let (when, arg) = match rest.split_once(':') {
                Some((w, a)) => {
                    let arg = a.parse::<u64>().map_err(|_| {
                        FaultPlanParseError(format!("`{a}`: arg must be an integer"))
                    })?;
                    (w, arg)
                }
                None => (rest, 0),
            };
            let (nth_str, sticky) = match when.strip_suffix('+') {
                Some(n) => (n, true),
                None => (when, false),
            };
            let nth = nth_str
                .parse::<u64>()
                .map_err(|_| FaultPlanParseError(format!("`{nth_str}`: nth must be an integer")))?;
            if nth == 0 {
                return Err(FaultPlanParseError("nth is 1-based; 0 never fires".into()));
            }
            specs.push(FaultSpec { point, nth, sticky, arg });
        }
        Ok(FaultPlan { specs })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.specs.is_empty() {
            return f.write_str("none");
        }
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

/// An armed [`FaultPlan`]: shared (`Arc`) between the hook sites, counts
/// hits per [`FaultPoint`], and reports when a fault fires. [`clear`]
/// disarms every remaining fault — the "disk came back" event chaos tests
/// use to exercise read-only recovery.
///
/// [`clear`]: FaultInjector::clear
#[derive(Debug, Default)]
pub struct FaultInjector {
    specs: Mutex<Vec<FaultSpec>>,
    hits: [AtomicU64; POINTS.len()],
}

impl FaultInjector {
    /// Records one hit of `point`; returns `Some(arg)` if a fault fires at
    /// this hit, `None` to proceed normally. One-shot specs are consumed by
    /// firing; sticky specs keep firing until [`FaultInjector::clear`].
    pub fn fires(&self, point: FaultPoint) -> Option<u64> {
        let hit = self.hits[point.slot()].fetch_add(1, Ordering::Relaxed) + 1;
        let mut specs = self.specs.lock().unwrap_or_else(|p| p.into_inner());
        let at = specs
            .iter()
            .position(|s| s.point == point && (hit == s.nth || (s.sticky && hit > s.nth)))?;
        let spec = specs[at];
        if !spec.sticky {
            specs.remove(at);
        }
        Some(spec.arg)
    }

    /// Disarms every remaining fault (hit counters keep counting). Models
    /// the underlying failure clearing — e.g. the disk coming back — so a
    /// degraded service's write probe can succeed.
    pub fn clear(&self) {
        self.specs.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    /// Replaces the armed specs with `plan`'s (hit counters are *not*
    /// reset, keeping "the 3rd fsync overall" deterministic across re-arms).
    pub fn rearm(&self, plan: &FaultPlan) {
        *self.specs.lock().unwrap_or_else(|p| p.into_inner()) = plan.specs.clone();
    }

    /// How many times `point` has been hit (fired or not) — lets tests
    /// assert a hook site is actually exercised.
    pub fn hits(&self, point: FaultPoint) -> u64 {
        self.hits[point.slot()].load(Ordering::Relaxed)
    }

    /// Whether any fault is still armed.
    pub fn is_armed(&self) -> bool {
        !self.specs.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_display_round_trip() {
        for s in [
            "none",
            "wal-fsync@1",
            "wal-write@2:16",
            "wal-open-corrupt@1:97",
            "snap-fsync@3",
            "snap-delta@1",
            "snap-delta@2+",
            "panic-pre-apply@2+",
            "panic-post-apply@1",
            "panic-mid-group@4+:7",
            "wal-fsync@2,panic-pre-apply@1+,wal-write@3:8",
        ] {
            let plan: FaultPlan = s.parse().unwrap();
            assert_eq!(plan.to_string(), s, "round trip of `{s}`");
            let again: FaultPlan = plan.to_string().parse().unwrap();
            assert_eq!(again, plan);
        }
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::none());
    }

    #[test]
    fn plan_parse_rejects_malformed() {
        for s in ["wal-fsync", "bogus@1", "wal-fsync@x", "wal-fsync@0", "wal-fsync@1:z"] {
            assert!(s.parse::<FaultPlan>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn one_shot_fires_exactly_once_at_nth() {
        let inj = FaultPlan::once(FaultPoint::WalFsync, 3).arm();
        assert_eq!(inj.fires(FaultPoint::WalFsync), None);
        assert_eq!(inj.fires(FaultPoint::WalFsync), None);
        assert_eq!(inj.fires(FaultPoint::WalFsync), Some(0));
        assert_eq!(inj.fires(FaultPoint::WalFsync), None);
        assert_eq!(inj.hits(FaultPoint::WalFsync), 4);
        // Other points are unaffected.
        assert_eq!(inj.fires(FaultPoint::SnapshotFsync), None);
    }

    #[test]
    fn sticky_fires_until_cleared() {
        let inj = FaultPlan::sticky(FaultPoint::WalFsync, 2).arm();
        assert_eq!(inj.fires(FaultPoint::WalFsync), None);
        assert_eq!(inj.fires(FaultPoint::WalFsync), Some(0));
        assert_eq!(inj.fires(FaultPoint::WalFsync), Some(0));
        assert!(inj.is_armed());
        inj.clear();
        assert!(!inj.is_armed());
        assert_eq!(inj.fires(FaultPoint::WalFsync), None);
    }

    #[test]
    fn arg_is_carried_to_the_hook() {
        let plan: FaultPlan = "wal-write@1:16".parse().unwrap();
        let inj = plan.arm();
        assert_eq!(inj.fires(FaultPoint::WalWrite), Some(16));
    }

    #[test]
    fn rearm_keeps_hit_counters() {
        let inj = FaultPlan::none().arm();
        assert_eq!(inj.fires(FaultPoint::WalFsync), None);
        inj.rearm(&FaultPlan::once(FaultPoint::WalFsync, 2));
        // The pre-rearm hit already consumed nth=1's slot in the count.
        assert_eq!(inj.fires(FaultPoint::WalFsync), Some(0));
    }
}
