//! E9 — the §5.2 delta-driven claim: semi-naive (delta-driven) saturation
//! beats naive tuple-at-a-time saturation, and the gap widens with database
//! size (naive re-enumerates every derivation each pass).
//!
//! ```text
//! cargo bench -p strata-bench --bench saturation
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strata_datalog::model::StandardModel;
use strata_workload::synth;

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    for &nodes in &[8usize, 16, 32] {
        let program = synth::tc_complement(nodes, nodes * 2, 42);
        group.bench_with_input(BenchmarkId::new("naive", nodes), &program, |b, p| {
            b.iter(|| black_box(StandardModel::compute_naive(p).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", nodes), &program, |b, p| {
            b.iter(|| black_box(StandardModel::compute(p).unwrap()))
        });
    }
    for &papers in &[50usize, 150] {
        let program = synth::conference(papers, papers / 8 + 2, 7);
        group.bench_with_input(BenchmarkId::new("naive/conference", papers), &program, |b, p| {
            b.iter(|| black_box(StandardModel::compute_naive(p).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("seminaive/conference", papers),
            &program,
            |b, p| b.iter(|| black_box(StandardModel::compute(p).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_saturation);
criterion_main!(benches);
