//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * cascade stratum skipping ON/OFF (the paper's stated while-loop
//!   improvement),
//! * cascade pre-saturation ON/OFF (reconstruction note 1),
//! * dynamic-multi support minimality pruning ON/OFF and the per-fact pair
//!   cap (bookkeeping vs migration).
//!
//! ```text
//! cargo bench -p strata-bench --bench ablation
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use strata_core::strategy::{CascadeConfig, CascadeEngine, DynamicMultiEngine};
use strata_core::support::MultiConfig;
use strata_core::{MaintenanceEngine, Update};
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

fn replay(engine: &mut dyn MaintenanceEngine, script: &[Update]) {
    for u in script {
        black_box(engine.apply(u).expect("valid update"));
    }
}

fn bench_cascade_ablation(c: &mut Criterion) {
    // Many strata, updates touching only the bottom: skipping pays off.
    let program = synth::conference(60, 10, 3);
    let script = random_fact_script(&program, &ScriptConfig { len: 20, insert_prob: 0.5 }, 9);

    let mut group = c.benchmark_group("ablation/cascade");
    group.sample_size(10);
    for (name, config) in [
        (
            "skip+presat",
            CascadeConfig { skip_unaffected: true, presaturate: true, ..CascadeConfig::default() },
        ),
        (
            "noskip",
            CascadeConfig { skip_unaffected: false, presaturate: true, ..CascadeConfig::default() },
        ),
        (
            "nopresat",
            CascadeConfig { skip_unaffected: true, presaturate: false, ..CascadeConfig::default() },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || CascadeEngine::with_config(program.clone(), config).expect("stratified"),
                |e| replay(e, &script),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_multi_support_ablation(c: &mut Criterion) {
    // MEET-style double derivations stress the set-of-sets bookkeeping.
    let program = strata_workload::paper::meet(40, 12);
    let script = random_fact_script(&program, &ScriptConfig { len: 20, insert_prob: 0.5 }, 17);

    let mut group = c.benchmark_group("ablation/dynamic-multi");
    group.sample_size(10);
    for (name, config) in [
        ("minimize/cap64", MultiConfig { minimize: true, max_pairs: 64 }),
        ("nominimize/cap64", MultiConfig { minimize: false, max_pairs: 64 }),
        ("minimize/cap4", MultiConfig { minimize: true, max_pairs: 4 }),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || DynamicMultiEngine::with_config(program.clone(), config).expect("stratified"),
                |e| replay(e, &script),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cascade_ablation, bench_multi_support_ablation);
criterion_main!(benches);
