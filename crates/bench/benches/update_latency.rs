//! E8 (microbench) — per-update latency of every maintenance strategy on a
//! mid-size conference pipeline, against the recompute baseline.
//!
//! Expected shape: incremental engines beat recompute; the static engine
//! pays for its pessimistic removal; the cascade is the cheapest of the
//! support-based engines (delta-driven, one-level supports).
//!
//! ```text
//! cargo bench -p strata-bench --bench update_latency
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use strata_core::registry::EngineRegistry;
use strata_core::{MaintenanceEngine, Update};
use strata_datalog::Fact;
use strata_workload::synth;

fn one_round(engine: &mut dyn MaintenanceEngine, updates: &[Update]) {
    for u in updates {
        black_box(engine.apply(u).expect("valid update"));
    }
}

fn bench_updates(c: &mut Criterion) {
    let program = synth::conference(80, 12, 7);
    // Insert / delete pairs targeting existing EDB relations.
    let updates = vec![
        Update::InsertFact(Fact::parse("withdrawn(p3)").unwrap()),
        Update::DeleteFact(Fact::parse("withdrawn(p3)").unwrap()),
        Update::InsertFact(Fact::parse("strong(p5)").unwrap()),
        Update::DeleteFact(Fact::parse("strong(p5)").unwrap()),
    ];

    let mut group = c.benchmark_group("update_latency/conference80");
    group.sample_size(10);
    let registry = EngineRegistry::standard();
    for name in registry.names() {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || registry.build(name, program.clone()).expect("stratified"),
                |e| one_round(e.as_mut(), &updates),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
