//! Shared harness for the experiment binaries (`exp_e1` … `exp_e8`) and the
//! Criterion benches.
//!
//! The experiments regenerate the paper's worked examples and comparative
//! claims; see `EXPERIMENTS.md` at the repository root for the index and the
//! recorded paper-vs-measured outcomes.

use std::time::{Duration, Instant};

use strata_core::registry::EngineRegistry;
use strata_core::{EngineBox, MaintenanceEngine, Update, UpdateStats};
use strata_datalog::Program;

pub mod json;

/// The strategy names compared throughout the experiments, in paper order.
///
/// `fact-level` is excluded from the comparative set — its bookkeeping is
/// the §5.2 "prohibitive" endpoint and dominates every table it appears in;
/// `exp_e11_factlevel` studies it separately. Construction still goes
/// through [`EngineRegistry`]; this list only selects names.
pub const COMPARED_STRATEGIES: &[&str] =
    &["recompute", "static", "dynamic-single", "dynamic-multi", "cascade"];

/// Builds the named strategies over `program` through the registry.
pub fn engines_by_name(program: &Program, names: &[&str]) -> Vec<EngineBox> {
    let registry = EngineRegistry::standard();
    names
        .iter()
        .map(|name| registry.build(name, program.clone()).expect("registered and stratified"))
        .collect()
}

/// Builds one strategy with an explicit storage config (`mem` or
/// `wal:<dir>`) through the registry — the durable counterpart of
/// [`engines_by_name`], used by the persistence experiments.
pub fn engine_with_storage(
    program: &Program,
    name: &str,
    storage: &strata_core::StorageSpec,
) -> EngineBox {
    EngineRegistry::standard()
        .build_with_storage(name, program.clone(), storage)
        .expect("registered, stratified, and storable")
}

/// The strategies compared throughout the experiments, in paper order.
pub fn all_engines(program: &Program) -> Vec<EngineBox> {
    engines_by_name(program, COMPARED_STRATEGIES)
}

/// The incremental strategies only (no recompute baseline).
pub fn incremental_engines(program: &Program) -> Vec<EngineBox> {
    engines_by_name(program, &COMPARED_STRATEGIES[1..])
}

/// Outcome of replaying a script on one engine.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Engine name.
    pub name: &'static str,
    /// Aggregated update statistics.
    pub total: UpdateStats,
    /// Wall-clock time spent inside `apply`.
    pub elapsed: Duration,
    /// Final model size.
    pub model_size: usize,
    /// Final model facts, for cross-engine agreement checks.
    pub final_facts: Vec<strata_datalog::Fact>,
}

/// Replays `script` on `engine`, aggregating statistics.
///
/// # Panics
/// If any update is rejected (scripts are generated valid).
pub fn replay(engine: &mut dyn MaintenanceEngine, script: &[Update]) -> ReplayResult {
    let mut total = UpdateStats::default();
    let start = Instant::now();
    for update in script {
        let stats = engine.apply(update).expect("script update must apply");
        total.accumulate(&stats);
    }
    let elapsed = start.elapsed();
    ReplayResult {
        name: engine.name(),
        total,
        elapsed,
        model_size: engine.model().len(),
        final_facts: engine.model().sorted_facts(),
    }
}

/// Replays `script` as a single [`MaintenanceEngine::apply_all`]
/// transaction, aggregating statistics — the batched counterpart of
/// [`replay`], used to measure what an engine's batch override buys.
///
/// # Panics
/// If the batch is rejected (scripts are generated valid).
pub fn replay_all(engine: &mut dyn MaintenanceEngine, script: &[Update]) -> ReplayResult {
    let start = Instant::now();
    let total = engine.apply_all(script).expect("script batch must apply");
    let elapsed = start.elapsed();
    ReplayResult {
        name: engine.name(),
        total,
        elapsed,
        model_size: engine.model().len(),
        final_facts: engine.model().sorted_facts(),
    }
}

/// Replays a script on every strategy and asserts they agree on the final
/// model.
///
/// # Panics
/// If two engines disagree — that would be a correctness bug.
pub fn compare_all(program: &Program, script: &[Update]) -> Vec<ReplayResult> {
    let mut results = Vec::new();
    for mut engine in all_engines(program) {
        results.push(replay(engine.as_mut(), script));
    }
    let reference = &results[0].final_facts;
    for r in &results[1..] {
        assert_eq!(
            reference, &r.final_facts,
            "engine {} diverged from the recompute baseline",
            r.name
        );
    }
    results
}

/// Prints a migration/latency table for a set of replay results.
pub fn print_table(workload: &str, results: &[ReplayResult]) {
    println!(
        "{:<26} {:<21} {:>8} {:>9} {:>10} {:>11} {:>10}",
        "workload", "strategy", "removed", "migrated", "derivs", "supportKiB", "ms"
    );
    for r in results {
        println!(
            "{:<26} {:<21} {:>8} {:>9} {:>10} {:>11.1} {:>10.2}",
            workload,
            r.name,
            r.total.removed,
            r.total.migrated,
            r.total.derivations,
            r.total.support_bytes as f64 / 1024.0,
            r.elapsed.as_secs_f64() * 1e3,
        );
    }
}

/// A minimal section header for experiment output.
pub fn banner(id: &str, title: &str) {
    println!("======================================================================");
    println!("{id}: {title}");
    println!("======================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_datalog::Fact;

    #[test]
    fn compare_all_agrees_on_paper_example() {
        let program = strata_workload::paper::pods(2, 6);
        let script = vec![
            Update::InsertFact(Fact::parse("accepted(3)").unwrap()),
            Update::DeleteFact(Fact::parse("accepted(1)").unwrap()),
            Update::InsertFact(Fact::parse("submitted(7)").unwrap()),
        ];
        let results = compare_all(&program, &script);
        assert_eq!(results.len(), 5);
        // Recompute reports zero migration by definition.
        assert_eq!(results[0].total.migrated, 0);
    }

    #[test]
    fn replay_measures_time_and_size() {
        let program = strata_workload::paper::chain(5);
        let mut engines = all_engines(&program);
        let script = vec![Update::InsertFact(Fact::parse("p0").unwrap())];
        let r = replay(engines[4].as_mut(), &script);
        assert_eq!(r.name, "cascade");
        assert!(r.model_size > 0);
    }

    #[test]
    fn batched_replay_agrees_with_sequential() {
        let program = strata_workload::paper::pods(2, 6);
        let script = vec![
            Update::InsertFact(Fact::parse("accepted(3)").unwrap()),
            Update::DeleteFact(Fact::parse("accepted(1)").unwrap()),
            Update::InsertFact(Fact::parse("submitted(7)").unwrap()),
        ];
        for (mut seq, mut bat) in all_engines(&program).into_iter().zip(all_engines(&program)) {
            let a = replay(seq.as_mut(), &script);
            let b = replay_all(bat.as_mut(), &script);
            assert_eq!(a.final_facts, b.final_facts, "[{}]", a.name);
        }
    }

    #[test]
    fn engine_with_storage_replays_into_a_durable_store() {
        let dir = std::env::temp_dir().join(format!("strata_bench_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = strata_core::StorageSpec::wal(dir.clone());
        let program = strata_workload::paper::pods(2, 6);
        {
            let mut e = engine_with_storage(&program, "cascade", &storage);
            replay(e.as_mut(), &[Update::InsertFact(Fact::parse("accepted(1)").unwrap())]);
        }
        let e = engine_with_storage(&strata_datalog::Program::new(), "cascade", &storage);
        assert!(e.model().contains_parsed("accepted(1)"), "state survived the drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engines_by_name_builds_through_the_registry() {
        let program = strata_workload::paper::pods(2, 6);
        let names: Vec<&str> = all_engines(&program).iter().map(|e| e.name()).collect();
        assert_eq!(names, COMPARED_STRATEGIES);
        assert_eq!(incremental_engines(&program).len(), COMPARED_STRATEGIES.len() - 1);
    }
}
