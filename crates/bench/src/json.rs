//! A minimal JSON reader for the `BENCH_*.json` baselines.
//!
//! The build environment is offline (no `serde`), and the bench-regression
//! guard only needs to *read back* the flat documents the experiment
//! binaries write. This is a small recursive-descent parser over that
//! subset of JSON: objects, arrays, strings (with the common escapes),
//! numbers, booleans, and null. It rejects trailing garbage and reports
//! byte offsets on errors.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64` — the benches write nothing that
    /// needs more).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not written by the benches;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 code point starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(JsonError { at: start, msg: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_document_shape() {
        let doc = parse(
            r#"{
              "bench": "exp_e9_plancache",
              "results": [
                {"workload": "tc", "interpreted_ms": 9.25, "compiled_ms": 4.22, "speedup": 2.19},
                {"workload": "join", "speedup": 24.27}
              ],
              "empty": [], "none": null, "flag": true
            }"#,
        )
        .unwrap();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("exp_e9_plancache"));
        let results = doc.get("results").unwrap().items();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("speedup").and_then(Json::as_f64), Some(2.19));
        assert_eq!(results[1].get("workload").and_then(Json::as_str), Some("join"));
        assert_eq!(doc.get("empty").unwrap().items().len(), 0);
        assert_eq!(doc.get("none"), Some(&Json::Null));
        assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn numbers_strings_and_escapes() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("0").unwrap().as_f64(), Some(0.0));
        assert_eq!(parse(r#""a\"b\\c\ndA""#).unwrap().as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1, ]", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
        let err = parse("[1, @]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn round_trips_committed_baselines() {
        // The committed baseline files must stay readable by this parser —
        // the contract the bench-regression guard depends on.
        for path in ["../../BENCH_plan.json", "../../BENCH_store.json"] {
            let src =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let doc = parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
            assert!(doc.get("bench").is_some(), "{path} has a bench field");
        }
    }
}
