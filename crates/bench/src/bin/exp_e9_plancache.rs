//! E9 — what plan compilation buys on the matcher hot path.
//!
//! Every maintenance strategy bottoms out in rule-body matching, so the
//! matcher dominates both saturation and update latency. This experiment
//! runs the same workloads through
//!
//! * **interpreted** — the legacy path
//!   ([`strata_datalog::eval::matcher::for_each_match_interpreted`]): the
//!   literal order is re-derived per invocation and bindings live in a
//!   hash map keyed by variable symbols;
//! * **compiled** — [`strata_datalog::eval::plan`]: plans built once per
//!   `(rule, delta_position)`, slot-register bindings, reusable scratch
//!   buffers;
//!
//! and records the timings in `BENCH_plan.json` so future PRs have a
//! trajectory to beat. Workloads: transitive-closure saturation (the
//! canonical 2-literal recursive join), a 3-literal join with negation, and
//! an insert-update latency stream over a maintained closure.
//!
//! Usage: `exp_e9_plancache [--smoke] [--out PATH]`. `--smoke` runs a tiny
//! workload (CI bit-rot guard) and skips the file unless `--out` is given;
//! the full run writes `BENCH_plan.json` in the current directory.

use std::time::Instant;

use strata_bench::banner;
use strata_datalog::eval::matcher::for_each_match_interpreted;
use strata_datalog::eval::plan::{compile_rules, CompiledRule};
use strata_datalog::eval::seminaive::DeltaStats;
use strata_datalog::eval::{incremental, seminaive, NewFactSink, NullNewFact};
use strata_datalog::{Database, Fact, Program, Rule, RuleId, Symbol};

/// A deterministic LCG for workload generation.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn rules_of(program: &Program) -> Vec<(RuleId, Rule)> {
    program.rules().map(|(id, r)| (id, r.clone())).collect()
}

// ---------------------------------------------------------------------------
// The interpreted baseline: the semi-naive loop re-implemented over the
// legacy matcher (identical control flow to `seminaive::saturate`/`drive`,
// so the measured difference is the matcher alone).
// ---------------------------------------------------------------------------

fn saturate_interpreted(db: &mut Database, rules: &[(RuleId, Rule)]) -> Vec<Fact> {
    let mut delta: Vec<Fact> = Vec::new();
    for (_, rule) in rules {
        let mut out: Vec<Fact> = Vec::new();
        for_each_match_interpreted(db, rule, None, &[], |head, _, _| {
            if !db.contains(&head) {
                out.push(head);
            }
            true
        });
        for f in out {
            if db.insert(f.clone()) {
                delta.push(f);
            }
        }
    }
    let mut added = delta.clone();
    drive_interpreted(db, rules, delta, &mut added);
    added
}

fn drive_interpreted(
    db: &mut Database,
    rules: &[(RuleId, Rule)],
    mut delta: Vec<Fact>,
    added: &mut Vec<Fact>,
) {
    while !delta.is_empty() {
        let by_rel = group(&delta);
        let mut next: Vec<Fact> = Vec::new();
        for (_, rule) in rules {
            for (li, lit) in rule.body.iter().enumerate() {
                if !lit.positive {
                    continue;
                }
                let Some(drel) = by_rel.get(&lit.atom.rel) else { continue };
                let mut out: Vec<Fact> = Vec::new();
                for_each_match_interpreted(db, rule, Some((li, drel)), &[], |head, _, _| {
                    if !db.contains(&head) {
                        out.push(head);
                    }
                    true
                });
                for f in out {
                    if db.insert(f.clone()) {
                        next.push(f.clone());
                        added.push(f);
                    }
                }
            }
        }
        delta = next;
    }
}

fn group(facts: &[Fact]) -> rustc_hash::FxHashMap<Symbol, strata_datalog::Relation> {
    let mut by_rel: rustc_hash::FxHashMap<Symbol, strata_datalog::Relation> = Default::default();
    for f in facts {
        by_rel
            .entry(f.rel)
            .or_insert_with(|| strata_datalog::Relation::new(f.arity()))
            .insert(f.args.clone());
    }
    by_rel
}

fn saturate_compiled(db: &mut Database, rules: &[CompiledRule]) -> Vec<Fact> {
    seminaive::saturate(db, rules, &mut NullNewFact, &mut DeltaStats::default())
}

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

fn tc_program(nodes: u64, edges: usize, seed: u64) -> Program {
    let mut lcg = Lcg(seed);
    let mut src = String::new();
    for _ in 0..edges {
        let a = lcg.next() % nodes;
        let b = lcg.next() % nodes;
        src.push_str(&format!("e({a}, {b}). "));
    }
    src.push_str("p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).");
    Program::parse(&src).expect("generated TC program parses")
}

fn triple_join_program(domain: u64, per_rel: usize, seed: u64) -> Program {
    let mut lcg = Lcg(seed);
    let mut src = String::new();
    for rel in ["e", "f", "g"] {
        for _ in 0..per_rel {
            let a = lcg.next() % domain;
            let b = lcg.next() % domain;
            src.push_str(&format!("{rel}({a}, {b}). "));
        }
    }
    for _ in 0..(per_rel / 10) {
        src.push_str(&format!("blocked({}). ", lcg.next() % domain));
    }
    src.push_str("t(X, W) :- e(X, Y), f(Y, Z), g(Z, W), !blocked(X).");
    Program::parse(&src).expect("generated join program parses")
}

/// Times `f` over `reps` repetitions and returns the best wall-clock
/// seconds (least-noise estimator) plus the last result for agreement checks.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

struct Row {
    workload: String,
    params: String,
    interpreted_ms: f64,
    compiled_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interpreted_ms / self.compiled_ms
    }
}

fn bench_saturation(name: &str, program: &Program, reps: usize) -> Row {
    let base = Database::from_facts(program.facts().cloned());
    let rules = rules_of(program);
    let compiled = compile_rules(rules.iter().cloned());

    let (ti, size_i) = best_of(reps, || {
        let mut db = base.clone();
        saturate_interpreted(&mut db, &rules);
        db.len()
    });
    let (tc, size_c) = best_of(reps, || {
        let mut db = base.clone();
        saturate_compiled(&mut db, &compiled);
        db.len()
    });
    assert_eq!(size_i, size_c, "paths must agree on the saturated model");
    Row {
        workload: name.to_string(),
        params: format!("{} facts, {} rules -> {} total", base.len(), rules.len(), size_c),
        interpreted_ms: ti * 1e3,
        compiled_ms: tc * 1e3,
    }
}

/// Insert-update latency over a maintained closure: each update adds one
/// fresh edge and runs delta rounds to fixpoint.
fn bench_update_latency(nodes: u64, edges: usize, updates: usize, reps: usize) -> Row {
    let program = tc_program(nodes, edges, 11);
    let rules = rules_of(&program);
    let compiled = compile_rules(rules.iter().cloned());
    let mut base = Database::from_facts(program.facts().cloned());
    saturate_compiled(&mut base, &compiled);
    let mut lcg = Lcg(99);
    let stream: Vec<Fact> = (0..updates)
        .map(|_| {
            Fact::parse(&format!("e({}, {})", lcg.next() % nodes, lcg.next() % nodes)).unwrap()
        })
        .collect();

    struct Null;
    impl NewFactSink for Null {
        fn on_new_fact(&mut self, _: RuleId, _: &Fact) {}
    }

    let (ti, size_i) = best_of(reps, || {
        let mut db = base.clone();
        for f in &stream {
            if db.insert(f.clone()) {
                let mut added = Vec::new();
                drive_interpreted(&mut db, &rules, vec![f.clone()], &mut added);
            }
        }
        db.len()
    });
    let (tc, size_c) = best_of(reps, || {
        let mut db = base.clone();
        for f in &stream {
            if db.insert(f.clone()) {
                incremental::stratum_saturate(
                    &mut db,
                    &compiled,
                    std::slice::from_ref(f),
                    &[],
                    &[],
                    &mut Null,
                    &mut DeltaStats::default(),
                );
            }
        }
        db.len()
    });
    assert_eq!(size_i, size_c, "paths must agree on the maintained model");
    Row {
        workload: "update_latency_tc".to_string(),
        params: format!("{nodes} nodes, {edges} edges, {updates} inserts"),
        interpreted_ms: ti * 1e3,
        compiled_ms: tc * 1e3,
    }
}

fn write_json(path: &str, rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"exp_e9_plancache\",\n");
    out.push_str("  \"description\": \"matcher hot path: interpreted (per-call plan + hash-map bindings) vs compiled (cached CompiledPlan + slot registers)\",\n");
    out.push_str("  \"unit\": \"ms, best-of-N wall clock\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"interpreted_ms\": {:.3}, \"compiled_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.workload,
            r.params,
            r.interpreted_ms,
            r.compiled_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(String::as_str);

    banner("E9", "plan cache: interpreted vs compiled matcher");
    let (reps, tc_nodes, tc_edges, tj_domain, tj_per_rel, updates) =
        if smoke { (2, 16, 40, 12, 60, 10) } else { (5, 64, 420, 48, 1400, 400) };

    let rows = vec![
        bench_saturation("tc_saturation", &tc_program(tc_nodes, tc_edges, 7), reps),
        bench_saturation(
            "triple_join_negation",
            &triple_join_program(tj_domain, tj_per_rel, 13),
            reps,
        ),
        bench_update_latency(tc_nodes, tc_edges, updates, reps),
    ];

    println!(
        "{:<24} {:<44} {:>14} {:>12} {:>9}",
        "workload", "params", "interpreted ms", "compiled ms", "speedup"
    );
    for r in &rows {
        println!(
            "{:<24} {:<44} {:>14.2} {:>12.2} {:>8.2}x",
            r.workload,
            r.params,
            r.interpreted_ms,
            r.compiled_ms,
            r.speedup()
        );
    }

    match (smoke, out_path) {
        (_, Some(p)) => write_json(p, &rows),
        (false, None) => write_json("BENCH_plan.json", &rows),
        (true, None) => println!("\n--smoke: skipping BENCH_plan.json"),
    }
}
