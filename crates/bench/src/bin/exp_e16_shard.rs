//! E16 — stratum-partitioned parallel commit: what sharding buys.
//!
//! The same insert stream over `C` disjoint stratum components is driven
//! by `C` concurrent producers through two builds of the serving layer,
//! both durable (each worker fsyncs its own WAL on group commit):
//!
//! * **single worker** — `shards = 1`, the flat legacy layout: one
//!   worker, one WAL, every component serialized through one group
//!   commit.
//! * **sharded** — `shards = C`: the dependency graph's connected
//!   components are spread over `C` workers, each with its own WAL
//!   segment and group commit, so components commit in parallel.
//!
//! The headline is the throughput ratio sharded / single-worker. On a
//! multi-core host it should exceed 1; on a single-core host it hovers
//! near 1 and the number bounds the router + fan-out overhead instead.
//! Either way the ratio is honest for the machine that measured it
//! (`host_cpus` is recorded alongside).
//!
//! Results go to `BENCH_shard.json`. Usage:
//! `exp_e16_shard [--smoke] [--out PATH]`; `--smoke` runs tiny sizes
//! (the CI bit-rot guard) and skips the file unless `--out` is given.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use strata_bench::banner;
use strata_core::{StorageSpec, Update};
use strata_datalog::{Fact, Program};
use strata_service::{DbOptions, IngestConfig, ShardedDb};

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_e16_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `c` disjoint stratified components: each has its own EDB relations and
/// one negation rule, so the dependency graph splits into exactly `c`
/// islands and a shard target of `c` gets one component per worker.
fn components(c: usize) -> Program {
    let mut src = String::new();
    for k in 0..c {
        src.push_str(&format!("seed{k}(0). blk{k}(0).\nlive{k}(X) :- seed{k}(X), !blk{k}(X).\n"));
    }
    Program::parse(&src).unwrap()
}

/// Component `k`'s stream: `n` fresh inserts, every fourth into the
/// blocking relation so each commit does real maintenance work.
fn stream(k: usize, n: usize) -> Vec<Update> {
    (1..=n)
        .map(|i| {
            let rel = if i % 4 == 0 { format!("blk{k}") } else { format!("seed{k}") };
            Update::InsertFact(Fact::parse(&format!("{rel}({i})")).unwrap())
        })
        .collect()
}

struct ShardRow {
    mode: String,
    shards: u32,
    updates: usize,
    elapsed_ms: f64,
    per_sec: f64,
}

/// One producer thread per component, all submitting concurrently; the
/// run ends when every handle has decided and the final flush returns.
fn bench_db(mode: &str, target: u32, streams: &[Vec<Update>], program: &Program) -> ShardRow {
    let dir = scratch(&format!("{mode}_{target}"));
    let mut opts = DbOptions::new("cascade");
    opts.shards = target;
    opts.cfg = IngestConfig {
        max_group: 64,
        max_delay: Duration::from_millis(2),
        max_pending: 8192,
        ..IngestConfig::default()
    };
    let db =
        Arc::new(ShardedDb::open(program.clone(), &StorageSpec::wal(dir.clone()), &opts).unwrap());
    let updates: usize = streams.iter().map(Vec::len).sum();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for part in streams {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                let handles: Vec<_> = part.iter().map(|u| db.submit(u.clone())).collect();
                for h in handles {
                    h.wait();
                }
            });
        }
    });
    db.flush();
    let elapsed = t0.elapsed().as_secs_f64();
    let shards = db.shards();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    ShardRow {
        mode: mode.to_string(),
        shards,
        updates,
        elapsed_ms: elapsed * 1e3,
        per_sec: updates as f64 / elapsed,
    }
}

fn write_json(path: &str, rows: &[ShardRow]) {
    let mut out = String::from("{\n  \"bench\": \"exp_e16_shard\",\n");
    out.push_str(
        "  \"description\": \"stratum-partitioned parallel commit: sharded vs single-worker \
         ingest throughput (durable cascade, per-shard WAL + group commit)\",\n",
    );
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"shard\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"updates\": {}, \"elapsed_ms\": {:.3}, \
             \"updates_per_sec\": {:.0}}}{}\n",
            r.mode,
            r.shards,
            r.updates,
            r.elapsed_ms,
            r.per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(String::as_str);

    banner("E16", "sharded serving layer: parallel commit over stratum components");
    let (comps, per_comp): (usize, usize) = if smoke { (2, 60) } else { (4, 1200) };
    let program = components(comps);
    let streams: Vec<Vec<Update>> = (0..comps).map(|k| stream(k, per_comp)).collect();

    let rows = vec![
        bench_db("single_worker", 1, &streams, &program),
        bench_db("sharded", comps as u32, &streams, &program),
    ];
    println!(
        "{:<14} {:>7} {:>8} {:>12} {:>14}",
        "mode", "shards", "updates", "elapsed ms", "updates/sec"
    );
    for r in &rows {
        println!(
            "{:<14} {:>7} {:>8} {:>12.2} {:>14.0}",
            r.mode, r.shards, r.updates, r.elapsed_ms, r.per_sec
        );
    }
    let ratio = rows[1].per_sec / rows[0].per_sec;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("sharded commit is {ratio:.2}x the single-worker baseline on {cpus} cpu(s)");

    match (smoke, out_path) {
        (_, Some(p)) => write_json(p, &rows),
        (false, None) => write_json("BENCH_shard.json", &rows),
        (true, None) => println!("\n--smoke: skipping BENCH_shard.json"),
    }
}
