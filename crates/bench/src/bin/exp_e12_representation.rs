//! E12 — §3's representation choice, measured: *implicit* (just `P`,
//! queries answered top-down by the §2 Theorem vi backchaining interpreter)
//! versus *explicit* (maintain `M(P)`, queries are lookups).
//!
//! "Which alternative is more attractive depends on the application. For
//! example [explicit] is more interesting in case of frequent queries and
//! infrequent updates."
//!
//! Expected shape: per-query cost is orders of magnitude lower with the
//! explicit representation; per-update cost is higher (the model must be
//! maintained). Query-heavy sessions favor the explicit representation,
//! update-heavy sessions the implicit one — the crossover the paper
//! gestures at.

use std::time::Instant;

use strata_bench::banner;
use strata_core::strategy::CascadeEngine;
use strata_core::{MaintenanceEngine, Update};
use strata_datalog::eval::backchain::Backchainer;
use strata_datalog::{Fact, Program};
use strata_workload::{paper, synth};

const GROUND_BUDGET: usize = 20_000_000;

enum Op {
    Update(Update),
    Query(Fact),
}

/// Implicit representation: keep only `P`; re-ground lazily when a query
/// follows an update.
fn implicit_session(program: &Program, ops: &[Op]) -> (f64, usize) {
    let t = Instant::now();
    let mut p = program.clone();
    let mut bc: Option<Backchainer> = None;
    let mut hits = 0;
    for op in ops {
        match op {
            Op::Update(Update::InsertFact(f)) => {
                p.assert_fact(f.clone()).expect("arity ok");
                bc = None;
            }
            Op::Update(Update::DeleteFact(f)) => {
                p.retract_fact(f);
                bc = None;
            }
            Op::Update(_) => unreachable!("fact sessions only"),
            Op::Query(q) => {
                let chainer =
                    bc.get_or_insert_with(|| Backchainer::new(&p, GROUND_BUDGET).expect("budget"));
                if chainer.holds(q) {
                    hits += 1;
                }
            }
        }
    }
    (t.elapsed().as_secs_f64() * 1e3, hits)
}

/// Explicit representation: maintain `M(P)`; queries are lookups.
fn explicit_session(program: &Program, ops: &[Op]) -> (f64, usize) {
    let t = Instant::now();
    let mut e = CascadeEngine::new(program.clone()).expect("stratified");
    let mut hits = 0;
    for op in ops {
        match op {
            Op::Update(u) => {
                e.apply(u).expect("valid update");
            }
            Op::Query(q) => {
                if e.model().contains(q) {
                    hits += 1;
                }
            }
        }
    }
    (t.elapsed().as_secs_f64() * 1e3, hits)
}

fn main() {
    banner("E12", "implicit vs explicit representation (§3) — query/update trade-off");

    // Raw per-query cost on the PODS database.
    let l = 300;
    let program = paper::pods(l / 3, l);
    let queries: Vec<Fact> =
        (1..=l).map(|i| Fact::parse(&format!("rejected({i})")).unwrap()).collect();
    let t = Instant::now();
    let mut bc = Backchainer::new(&program, GROUND_BUDGET).unwrap();
    let setup_implicit = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let hits: usize = queries.iter().filter(|q| bc.holds(q)).count();
    let query_implicit = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let engine = CascadeEngine::new(program.clone()).unwrap();
    let setup_explicit = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let hits2: usize = queries.iter().filter(|q| engine.model().contains(q)).count();
    let query_explicit = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(hits, hits2, "both representations answer identically");
    println!("\npods({}, {l}), {l} membership queries:", l / 3);
    println!("{:<12} {:>12} {:>14}", "", "setup ms", "queries ms");
    println!("{:<12} {:>12.2} {:>14.3}", "implicit", setup_implicit, query_implicit);
    println!("{:<12} {:>12.2} {:>14.3}", "explicit", setup_explicit, query_explicit);
    assert!(query_explicit < query_implicit, "lookups must beat proofs");

    // Mixed sessions over a recursive workload where both representations
    // pay real costs: a bill of materials (tree-shaped `contains`, so the
    // top-down proof space stays polynomial — see the backchain module docs
    // on why dense cyclic graphs defeat loop-checking interpreters).
    let program = synth::bom(3, 3, 9);
    let num_parts = 1 + 3 + 9 + 27;
    // Toggling stocked leaves drives real non-monotonic maintenance.
    let mut stocked: Vec<Fact> =
        program.facts().filter(|f| f.rel.as_str() == "in_stock").cloned().collect();
    stocked.sort();
    let mk_ops = |updates: usize, queries: usize| -> Vec<Op> {
        let mut ops = Vec::new();
        let period = (queries / updates.max(1)).max(1);
        let mut qi = 0usize;
        for u in 0..updates {
            let f = stocked[u / 2 % stocked.len()].clone();
            // Delete a stocked leaf, then re-insert it on the next visit.
            ops.push(Op::Update(if u % 2 == 0 {
                Update::DeleteFact(f)
            } else {
                Update::InsertFact(f)
            }));
            for _ in 0..period {
                if qi < queries {
                    let rel = if qi % 2 == 0 { "blocked" } else { "buildable" };
                    let q = Fact::parse(&format!("{rel}(c{})", qi % num_parts)).unwrap();
                    ops.push(Op::Query(q));
                    qi += 1;
                }
            }
        }
        while qi < queries {
            let rel = if qi % 2 == 0 { "blocked" } else { "buildable" };
            let q = Fact::parse(&format!("{rel}(c{})", qi % num_parts)).unwrap();
            ops.push(Op::Query(q));
            qi += 1;
        }
        ops
    };

    println!("\nmixed sessions on bom(3, 3) (updates interleaved with queries):");
    println!(
        "{:<16} {:>14} {:>14} {:>10}",
        "updates:queries", "implicit ms", "explicit ms", "winner"
    );
    let mut explicit_wins_query_heavy = false;
    let mut implicit_wins_update_heavy = false;
    for (updates, queries) in [(1usize, 200usize), (5, 100), (25, 25), (50, 2)] {
        let ops = mk_ops(updates, queries);
        let (imp, h1) = implicit_session(&program, &ops);
        let (exp, h2) = explicit_session(&program, &ops);
        assert_eq!(h1, h2, "representations disagree on query answers");
        let winner = if exp <= imp { "explicit" } else { "implicit" };
        println!(
            "{:<16} {:>14.2} {:>14.2} {:>10}",
            format!("{updates}:{queries}"),
            imp,
            exp,
            winner
        );
        if updates == 1 && exp <= imp {
            explicit_wins_query_heavy = true;
        }
        if updates == 50 && imp <= exp {
            implicit_wins_update_heavy = true;
        }
    }
    assert!(
        explicit_wins_query_heavy,
        "the explicit representation must win the query-heavy session (§3's premise)"
    );
    let _ = implicit_wins_update_heavy; // reported, not asserted: both ends are workload-dependent
    println!("\nE12 PASS: lookups beat proofs per query; the explicit representation");
    println!("wins query-heavy sessions — the paper's premise for maintaining M(P).");
}
