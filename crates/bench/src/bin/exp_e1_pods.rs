//! E1 — §3 PODS example: `M(PODS)` and the paper's two update equations.
//!
//! * `INSERT(accepted(m))` for a failed paper `m`:
//!   `M(PODS') = M(PODS) \ {rejected(m)} ∪ {accepted(m)}`
//! * `DELETE(accepted(nj))`:
//!   `M(PODS'') = M(PODS) \ {accepted(nj)} ∪ {rejected(nj)}`
//!
//! Every strategy must realize exactly these deltas.

use strata_bench::{all_engines, banner};
use strata_core::Update;
use strata_datalog::Fact;
use strata_workload::paper;

fn main() {
    banner("E1", "PODS database (§3): insertions cause deletions and vice versa");
    let (k, l) = (3, 8);
    let program = paper::pods(k, l);
    println!("PODS with l = {l} submissions, k = {k} accepted\n");

    // INSERT(accepted(m)) with m ∈ Failure = {k+1..l}.
    let m = k + 2;
    println!(
        "{:<21} {:>10} {:>12} {:>22}",
        "strategy", "|M(P')|", "Δ as paper?", "rejected(m) removed?"
    );
    for mut engine in all_engines(&program) {
        let before = engine.model().clone();
        engine.apply(&Update::InsertFact(Fact::parse(&format!("accepted({m})")).unwrap())).unwrap();
        let after = engine.model();
        let gone = before.difference(after);
        let new = after.difference(&before);
        let delta_ok = gone.len() == 1
            && gone[0] == Fact::parse(&format!("rejected({m})")).unwrap()
            && new.len() == 1
            && new[0] == Fact::parse(&format!("accepted({m})")).unwrap();
        println!(
            "{:<21} {:>10} {:>12} {:>22}",
            engine.name(),
            after.len(),
            if delta_ok { "yes" } else { "NO" },
            if !after.contains_parsed(&format!("rejected({m})")) { "yes" } else { "NO" },
        );
        assert!(delta_ok, "paper's insertion equation violated by {}", engine.name());
    }

    // DELETE(accepted(nj)) with nj = 1.
    println!("\nDELETE(accepted(1)):");
    println!("{:<21} {:>10} {:>12}", "strategy", "|M(P'')|", "Δ as paper?");
    for mut engine in all_engines(&program) {
        let before = engine.model().clone();
        engine.apply(&Update::DeleteFact(Fact::parse("accepted(1)").unwrap())).unwrap();
        let after = engine.model();
        let gone = before.difference(after);
        let new = after.difference(&before);
        let delta_ok = gone.len() == 1
            && gone[0] == Fact::parse("accepted(1)").unwrap()
            && new.len() == 1
            && new[0] == Fact::parse("rejected(1)").unwrap();
        println!(
            "{:<21} {:>10} {:>12}",
            engine.name(),
            after.len(),
            if delta_ok { "yes" } else { "NO" },
        );
        assert!(delta_ok, "paper's deletion equation violated by {}", engine.name());
    }
    println!("\nE1 PASS: all strategies realize the paper's model deltas exactly.");
}
