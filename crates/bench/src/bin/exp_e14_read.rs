//! E14 — what the MVCC read path buys: snapshot reads vs mutex reads
//! under write pressure.
//!
//! One writer saturates the ingest service with real transactions — a
//! sliding window of chain edges under transitive closure, so every
//! insert derives (and every delete retracts) a window's worth of `reach`
//! facts and each group commit holds the engine lock for a real stretch
//! of maintenance work. Meanwhile a reader clocks a cheap query through
//! the two read paths:
//!
//! * **mutex** — `Service::with_engine`, the pre-MVCC path: every read
//!   acquires the engine mutex and queues behind whatever group commit is
//!   in flight, so read latency grows with the commit batch size.
//! * **snapshot** — `Service::snapshot`, the MVCC path: one `Arc` clone
//!   of the latest published model; it never touches the engine mutex, so
//!   read latency is independent of the in-flight commit size.
//!
//! The headline is the *shape*: as the group-commit watermark grows, the
//! mutex path degrades and the snapshot path stays flat.
//!
//! Results go to `BENCH_read.json`. Usage:
//! `exp_e14_read [--smoke] [--out PATH]`; `--smoke` runs tiny sizes
//! (the CI bit-rot guard) and skips the file unless `--out` is given.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strata_bench::banner;
use strata_core::registry::EngineRegistry;
use strata_core::{EngineBox, StorageSpec, Update};
use strata_datalog::{Fact, Program, Query};
use strata_service::{IngestConfig, Service};

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_e14_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The production configuration: durable cascade, fsync on commit.
/// Transitive closure makes each edge update do a window's worth of
/// derivation work inside the lock.
fn durable_cascade(dir: &std::path::Path) -> EngineBox {
    let program = Program::parse(
        "reach(X, Y) :- edge(X, Y).
         reach(X, Z) :- edge(X, Y), reach(Y, Z).",
    )
    .unwrap();
    EngineRegistry::standard()
        .build_with_storage("cascade", program, &StorageSpec::wal(dir.to_path_buf()))
        .expect("open durable cascade")
}

fn edge(i: usize) -> Fact {
    Fact::parse(&format!("edge({i}, {})", i + 1)).unwrap()
}

struct ReadRow {
    mode: &'static str,
    batch: usize,
    reads: usize,
    reads_per_sec: f64,
    mean_us: f64,
    p95_us: f64,
}

/// Measures one (read path, group-commit watermark) cell: a writer keeps
/// the service saturated while the reader clocks queries for `measure`.
fn bench_reads(mode: &'static str, batch: usize, window: usize, measure: Duration) -> ReadRow {
    // The window must span more than a group (2 updates per iteration), or
    // an edge's insert and delete could meet in one group and coalesce
    // away instead of doing engine work.
    assert!(2 * window > batch, "window too small for batch {batch}");
    let dir = scratch(&format!("{mode}_{batch}"));
    let service = Arc::new(Service::start(
        durable_cascade(&dir),
        IngestConfig {
            max_group: batch,
            max_delay: Duration::from_millis(2),
            // Enough backlog to always cut full groups, small enough that
            // the teardown drain stays a couple of groups deep.
            max_pending: (2 * batch).max(32),
            ..IngestConfig::default()
        },
    ));
    // Pre-fill the sliding window so the maintained closure is at steady
    // state from the first read.
    for i in 0..window {
        drop(service.submit(Update::InsertFact(edge(i))));
    }
    service.flush();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Backpressure (`max_pending`) bounds the backlog; never
            // waiting on individual handles keeps the queue non-empty, so
            // the worker commits back to back and the engine lock is held
            // for real, saturating stretches.
            let mut i = window;
            while !stop.load(Ordering::Relaxed) {
                drop(service.submit(Update::InsertFact(edge(i))));
                drop(service.submit(Update::DeleteFact(edge(i - window))));
                i += 1;
            }
        })
    };
    // Let the writer saturate, then clock reads. The query itself is cheap
    // — a scan of the `edge` window — so read latency is dominated by the
    // path, not the evaluation.
    std::thread::sleep(Duration::from_millis(50));
    let query = Query::parse("edge(X, Y)").unwrap();
    let mut latencies_us = Vec::new();
    let t0 = Instant::now();
    while t0.elapsed() < measure {
        let t = Instant::now();
        let n = match mode {
            "mutex" => service.with_engine(|e| query.count(e.model())),
            "snapshot" => query.count(&service.snapshot().model),
            _ => unreachable!(),
        };
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(n > 0, "the window must stay populated");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
    service.flush();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    let reads = latencies_us.len();
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let mean_us = latencies_us.iter().sum::<f64>() / reads as f64;
    let p95_us = latencies_us[((reads * 95) / 100).min(reads - 1)];
    ReadRow { mode, batch, reads, reads_per_sec: reads as f64 / elapsed, mean_us, p95_us }
}

fn write_json(path: &str, rows: &[ReadRow]) {
    let mut out = String::from("{\n  \"bench\": \"exp_e14_read\",\n");
    out.push_str(
        "  \"description\": \"reader latency vs group-commit size: engine-mutex reads queue \
         behind in-flight commits, MVCC snapshot reads stay flat (durable cascade, one \
         saturating writer, sliding-window transitive closure)\",\n",
    );
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"read\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"batch\": {}, \"reads\": {}, \"reads_per_sec\": {:.0}, \
             \"mean_us\": {:.1}, \"p95_us\": {:.1}}}{}\n",
            r.mode,
            r.batch,
            r.reads,
            r.reads_per_sec,
            r.mean_us,
            r.p95_us,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(String::as_str);

    banner("E14", "read path under write pressure: engine mutex vs MVCC snapshot");
    let (window, measure, batches): (usize, Duration, Vec<usize>) = if smoke {
        (100, Duration::from_millis(300), vec![4, 64])
    } else {
        (200, Duration::from_millis(1500), vec![1, 16, 64, 256])
    };

    let mut rows = Vec::new();
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>10} {:>10}",
        "mode", "batch", "reads", "reads/sec", "mean us", "p95 us"
    );
    for &batch in &batches {
        for mode in ["mutex", "snapshot"] {
            let r = bench_reads(mode, batch, window, measure);
            println!(
                "{:<10} {:>6} {:>8} {:>12.0} {:>10.1} {:>10.1}",
                r.mode, r.batch, r.reads, r.reads_per_sec, r.mean_us, r.p95_us
            );
            rows.push(r);
        }
    }
    let rps = |mode: &str, batch: usize| {
        rows.iter().find(|r| r.mode == mode && r.batch == batch).map_or(0.0, |r| r.reads_per_sec)
    };
    let largest = *batches.last().unwrap();
    let smallest = batches[0];
    println!(
        "\nat batch {largest}: snapshot reads are {:.1}x mutex reads",
        rps("snapshot", largest) / rps("mutex", largest)
    );
    println!(
        "snapshot flatness across batch {smallest} -> {largest}: {:.2}x",
        rps("snapshot", largest) / rps("snapshot", smallest)
    );

    match (smoke, out_path) {
        (_, Some(p)) => write_json(p, &rows),
        (false, None) => write_json("BENCH_read.json", &rows),
        (true, None) => println!("\n--smoke: skipping BENCH_read.json"),
    }
}
