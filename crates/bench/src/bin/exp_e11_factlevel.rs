//! E11 — §5.2's rejected alternative, measured: supports recording **facts**
//! rather than relations give a migration-free solution, at bookkeeping
//! costs that grow far faster than the cascade's rule pointers.
//!
//! "This would be clearly preferable from the point of view of minimization
//! of migration … however, this choice should be rejected in the framework
//! of databases [as] the computation costs incurred in the task of keeping
//! all possible deductions is clearly too prohibitive."
//!
//! Expected shape: fact-level migration = 0 everywhere; fact-level support
//! bytes ≫ cascade support bytes, with the gap widening as the database
//! grows (more facts, more alternative derivations).

use std::time::Instant;

use strata_bench::banner;
use strata_core::strategy::{CascadeEngine, FactLevelEngine};
use strata_core::{MaintenanceEngine, Update};
use strata_workload::paper;
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

fn replay(engine: &mut dyn MaintenanceEngine, script: &[Update]) -> (usize, usize, usize, f64) {
    let start = Instant::now();
    let mut removed = 0;
    let mut migrated = 0;
    let mut support = 0;
    for u in script {
        let s = engine.apply(u).expect("valid script");
        removed += s.removed;
        migrated += s.migrated;
        support = s.support_bytes;
    }
    (removed, migrated, support, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    banner("E11", "fact-level supports: zero migration, prohibitive bookkeeping (§5.2)");

    let workloads = vec![
        ("conf(40)", paper::conf(40)),
        ("congress(40)", paper::congress(40)),
        ("meet(30, 8)", paper::meet(30, 8)),
        ("conference(40, 8)", synth::conference(40, 8, 21)),
        ("bom(3, 3)", synth::bom(3, 3, 22)),
    ];
    let cfg = ScriptConfig { len: 40, insert_prob: 0.5 };

    println!(
        "\n{:<20} {:<14} {:>8} {:>9} {:>12} {:>9}",
        "workload", "strategy", "removed", "migrated", "supportKiB", "ms"
    );
    for (name, program) in &workloads {
        let script = random_fact_script(program, &cfg, 77);
        let mut cascade = CascadeEngine::new(program.clone()).expect("stratified");
        let mut factlevel = FactLevelEngine::new(program.clone()).expect("stratified");
        let c = replay(&mut cascade, &script);
        let f = replay(&mut factlevel, &script);
        assert_eq!(
            cascade.model().sorted_facts(),
            factlevel.model().sorted_facts(),
            "engines must agree on {name}"
        );
        for (strategy, (removed, migrated, support, ms)) in [("cascade", c), ("fact-level", f)] {
            println!(
                "{:<20} {:<14} {:>8} {:>9} {:>12.1} {:>9.2}",
                name,
                strategy,
                removed,
                migrated,
                support as f64 / 1024.0,
                ms
            );
        }
        assert_eq!(f.1, 0, "fact-level supports must never migrate on {name}");
    }

    // Scaling series: the bookkeeping ratio fact-level/cascade widens with
    // database size (the "prohibitive … when many facts are present" claim).
    println!("\nscaling (bill of materials, depth d, width 3):");
    println!(
        "{:>3} {:>8} {:>14} {:>14} {:>8}",
        "d", "facts", "cascadeKiB", "factlevelKiB", "ratio"
    );
    let mut prev_ratio = 0.0;
    let mut widening = true;
    for depth in 1..=4 {
        let program = synth::bom(depth, 3, 5);
        let cascade = CascadeEngine::new(program.clone()).expect("stratified");
        let factlevel = FactLevelEngine::new(program.clone()).expect("stratified");
        let (cb, fb) = (cascade.support_bytes(), factlevel.support_bytes());
        let ratio = fb as f64 / cb.max(1) as f64;
        println!(
            "{:>3} {:>8} {:>14.1} {:>14.1} {:>8.2}",
            depth,
            cascade.model().len(),
            cb as f64 / 1024.0,
            fb as f64 / 1024.0,
            ratio
        );
        widening &= ratio >= prev_ratio * 0.9; // monotone up to noise
        prev_ratio = ratio;
    }
    assert!(widening, "fact-level bookkeeping must outgrow the cascade's");
    println!("\nE11 PASS: zero migration everywhere; bookkeeping ratio grows with size.");
}
