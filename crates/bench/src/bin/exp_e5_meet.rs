//! E5 — §4.2/§4.3 Example 4 (MEET): one support per fact is not enough.
//!
//! `accepted(a)` is derivable both from `submitted ∧ ¬rejected` and from
//! `author ∧ in_program_committee`. The single-support engine keeps only one
//! pair; if it is the negation-based one, inserting `rejected(a)` migrates
//! the fact. The sets-of-sets engine keeps both pairs: the second survives
//! the insertion and the fact is never removed, "as desired".

use strata_bench::banner;
use strata_core::strategy::{DynamicMultiEngine, DynamicSingleEngine};
use strata_core::verify::assert_matches_ground_truth;
use strata_core::{MaintenanceEngine, Update};
use strata_datalog::Fact;
use strata_workload::paper;

fn main() {
    banner("E5", "MEET (Example 4): single support migrates, sets-of-sets do not");
    let program = paper::meet(4, 1); // paper1 authored by the PC member
    let target = Fact::parse("accepted(paper1)").unwrap();
    let update = Update::InsertFact(Fact::parse("rejected(paper1)").unwrap());
    println!("database: MEET; update: {update}; doubly-derived fact: {target}\n");

    let mut single = DynamicSingleEngine::new(program.clone()).unwrap();
    let s1 = single.apply(&update).unwrap();
    assert!(single.model().contains(&target));
    assert_matches_ground_truth(&single);

    let mut multi = DynamicMultiEngine::new(program.clone()).unwrap();
    let before = multi.support_of(&target).unwrap().pairs().len();
    let s2 = multi.apply(&update).unwrap();
    assert!(multi.model().contains(&target));
    assert_matches_ground_truth(&multi);
    let after = multi.support_of(&target).unwrap().pairs().len();

    // The singly-derived accepted(paper2..4) migrate under *both* engines
    // (supports are relation-granular); the difference Example 4 is about is
    // the doubly-derived accepted(paper1): the single engine removes it too,
    // the multi engine spares exactly it.
    println!(
        "{:<21} {:>8} {:>9} {:>26}",
        "strategy", "removed", "migrated", "accepted(paper1) removed?"
    );
    println!("{:<21} {:>8} {:>9} {:>26}", single.name(), s1.removed, s1.migrated, "yes (migrated)");
    println!(
        "{:<21} {:>8} {:>9} {:>26}",
        multi.name(),
        s2.removed,
        s2.migrated,
        "no (second pair survives)"
    );
    assert!(s1.migrated >= 1, "single support must migrate accepted(paper1)");
    assert_eq!(
        s2.removed,
        s1.removed - 1,
        "multi supports must spare exactly the doubly-derived fact"
    );
    println!(
        "\nsets-of-sets support of {target}: {before} pairs before the insertion, {after} after"
    );
    assert_eq!(before, 2);
    assert_eq!(after, 1, "the failed pair is dropped; the author/in_pc pair survives");
    println!("\nE5 PASS: Example 4 reproduced — supports must be kept per derivation.");
}
