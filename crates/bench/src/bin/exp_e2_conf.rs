//! E2 — §4.1 Example 1 (CONF): "the static solution leads to a migration of
//! the fact accepted(l+1)", which the dynamic solutions avoid.
//!
//! CONF asserts `accepted(l+1)` directly (a late paper accepted by fiat)
//! while the rule `accepted(X) :- submitted(X), !rejected(X)` covers the
//! rest. Inserting `rejected(l+1)` must not disturb `accepted(l+1)` — but
//! the static removal phase cannot know that, because the dependency graph
//! records only relation-level potential dependencies.

use strata_bench::{all_engines, banner};
use strata_core::Update;
use strata_datalog::Fact;
use strata_workload::paper;

fn main() {
    banner("E2", "CONF (Example 1): static analysis migrates the asserted fact");
    let l = 6;
    let program = paper::conf(l);
    let target = Fact::parse(&format!("accepted({})", l + 1)).unwrap();
    let update = Update::InsertFact(Fact::parse(&format!("rejected({})", l + 1)).unwrap());
    println!("database: CONF with l = {l}; update: {update}\n");
    println!(
        "{:<21} {:>8} {:>9} {:>26}",
        "strategy", "removed", "migrated", "accepted(l+1) migrated?"
    );
    let mut static_migrates = false;
    let mut others_keep = true;
    for mut engine in all_engines(&program) {
        let before = engine.model().contains(&target);
        assert!(before);
        let stats = engine.apply(&update).unwrap();
        assert!(engine.model().contains(&target), "accepted(l+1) must stay in the model");
        // Did accepted(l+1) migrate? With CONF, the other candidates for
        // removal are the l derived accepted facts. removed > l means the
        // asserted one was (erroneously) removed too.
        let asserted_migrated = stats.removed > l;
        println!(
            "{:<21} {:>8} {:>9} {:>26}",
            engine.name(),
            stats.removed,
            stats.migrated,
            if asserted_migrated { "yes (migrated)" } else { "no" }
        );
        match engine.name() {
            "static" => static_migrates = asserted_migrated,
            "recompute" => {}
            _ => others_keep &= !asserted_migrated,
        }
    }
    assert!(static_migrates, "paper: the static solution must migrate accepted(l+1)");
    assert!(others_keep, "paper: dynamic solutions must not migrate accepted(l+1)");
    println!("\nE2 PASS: static migrates accepted(l+1); dynamic/cascade engines do not.");
}
