//! E3 — §4.2 Example 2: the naive dynamic solution (no signed relations)
//! is **incorrect**; the signed correction restores Lemma 2.
//!
//! With `P = {p1 ← ¬p0, p2 ← ¬p1, p3 ← ¬p2}`, `M(P) = {p1, p3}`.
//! `INSERT(p0)` must remove `p3`, but p3's naive Neg set is `{p2}` — "the
//! crucial (negative) dependency of p3 from p0 is not recorded." Symmetric
//! failure for `DELETE(p0)` missing the removal of `p2`.

use strata_bench::banner;
use strata_core::strategy::DynamicSingleEngine;
use strata_core::verify::check_against_ground_truth;
use strata_core::{MaintenanceEngine, Update};
use strata_datalog::Fact;
use strata_workload::paper;

fn model_line(e: &dyn MaintenanceEngine) -> String {
    e.model().sorted_facts().iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
}

fn main() {
    banner("E3", "negation chain (Example 2): naive supports are incorrect");
    let program = paper::chain(3);
    println!("P = {{p1 :- !p0. p2 :- !p1. p3 :- !p2.}}   M(P) = {{p1, p3}}\n");

    // The incorrect naive variant.
    let mut naive = DynamicSingleEngine::naive_unsigned(program.clone()).unwrap();
    naive.apply(&Update::InsertFact(Fact::parse("p0").unwrap())).unwrap();
    let naive_model = model_line(&naive);
    let naive_diverges = check_against_ground_truth(&naive).is_err();
    println!("naive    after INSERT(p0): {{{naive_model}}}  (truth: {{p0, p2}})");
    assert!(
        naive.model().contains_parsed("p3"),
        "the naive variant must exhibit the paper's bug: p3 not removed"
    );
    assert!(naive_diverges);

    // The corrected signed variant.
    let mut signed = DynamicSingleEngine::new(program.clone()).unwrap();
    signed.apply(&Update::InsertFact(Fact::parse("p0").unwrap())).unwrap();
    println!("signed   after INSERT(p0): {{{}}}", model_line(&signed));
    check_against_ground_truth(&signed).expect("signed variant is correct");

    // And the deletion direction: from P' = P ∪ {p0}, DELETE(p0) must
    // remove p2, which the naive Pos sets (all empty) cannot see.
    let mut naive2 = DynamicSingleEngine::naive_unsigned(program.clone()).unwrap();
    naive2.apply(&Update::InsertFact(Fact::parse("p0").unwrap())).unwrap();
    // (naive2's model is already wrong; rebuild a clean engine on P' to
    // isolate the deletion bug, as the paper's narrative does.)
    let mut pprime = program.clone();
    pprime.assert_fact(Fact::parse("p0").unwrap()).unwrap();
    let mut naive_del = DynamicSingleEngine::naive_unsigned(pprime.clone()).unwrap();
    naive_del.apply(&Update::DeleteFact(Fact::parse("p0").unwrap())).unwrap();
    println!("naive    after DELETE(p0): {{{}}}  (truth: {{p1, p3}})", model_line(&naive_del));
    assert!(
        naive_del.model().contains_parsed("p2"),
        "the naive variant must fail to remove p2 on deletion"
    );

    let mut signed_del = DynamicSingleEngine::new(pprime).unwrap();
    signed_del.apply(&Update::DeleteFact(Fact::parse("p0").unwrap())).unwrap();
    println!("signed   after DELETE(p0): {{{}}}", model_line(&signed_del));
    check_against_ground_truth(&signed_del).expect("signed deletion is correct");

    println!("\nE3 PASS: naive supports reproduce the paper's incorrectness on both");
    println!("directions; the signed-relation resolution restores correctness.");
}
