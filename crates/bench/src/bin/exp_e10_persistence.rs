//! E10 — what durability costs and what recovery buys.
//!
//! Three measurements over [`strata_core::durable::DurableEngine`] (cascade
//! inner engine, conference workload):
//!
//! * **commit throughput** — the same update stream applied (a) one
//!   update per transaction with fsync-on-commit, (b) batched into
//!   `apply_all` transactions (one fsync per batch), and (c) per-update
//!   with buffered durability (no fsync; isolates the fsync cost).
//! * **recovery time vs WAL length** — `open` on a store whose WAL holds
//!   increasing numbers of committed transactions (snapshot + replay).
//! * **snapshot + compaction cost** — `compact()` wall time and the
//!   resulting snapshot size, after the same WAL lengths.
//!
//! Results go to `BENCH_store.json` so future storage PRs have a baseline
//! to beat. Usage: `exp_e10_persistence [--smoke] [--out PATH]`; `--smoke`
//! runs tiny sizes (the CI bit-rot guard) and skips the file unless
//! `--out` is given.

use std::path::PathBuf;
use std::time::Instant;

use strata_bench::banner;
use strata_core::durable::DurableEngine;
use strata_core::registry::EngineRegistry;
use strata_core::{MaintenanceEngine, Update};
use strata_store::{Durability, SNAPSHOT_FILE};
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_e10_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_cascade(
    dir: &std::path::Path,
    program: strata_datalog::Program,
    durability: Durability,
) -> DurableEngine {
    let registry = EngineRegistry::standard();
    DurableEngine::open(dir, "cascade", registry.ctor("cascade").unwrap(), program, durability)
        .expect("open durable engine")
}

struct ThroughputRow {
    mode: String,
    updates: usize,
    elapsed_ms: f64,
    per_sec: f64,
    wal_kib: f64,
}

fn bench_throughput(
    mode: &str,
    script: &[Update],
    batch: usize,
    durability: Durability,
    program: &strata_datalog::Program,
) -> ThroughputRow {
    let dir = scratch(&format!("tp_{mode}"));
    let mut engine = open_cascade(&dir, program.clone(), durability);
    let t0 = Instant::now();
    if batch <= 1 {
        for u in script {
            engine.apply(u).expect("script update applies");
        }
    } else {
        for chunk in script.chunks(batch) {
            engine.apply_all(chunk).expect("script batch applies");
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let wal_kib = engine.wal_bytes() as f64 / 1024.0;
    let _ = std::fs::remove_dir_all(&dir);
    ThroughputRow {
        mode: mode.to_string(),
        updates: script.len(),
        elapsed_ms: elapsed * 1e3,
        per_sec: script.len() as f64 / elapsed,
        wal_kib,
    }
}

struct RecoveryRow {
    wal_txns: usize,
    wal_kib: f64,
    recover_ms: f64,
    model_facts: usize,
    compact_ms: f64,
    snapshot_kib: f64,
}

fn bench_recovery(
    wal_txns: usize,
    script: &[Update],
    program: &strata_datalog::Program,
) -> RecoveryRow {
    let dir = scratch(&format!("rec_{wal_txns}"));
    {
        let mut engine = open_cascade(&dir, program.clone(), Durability::Buffered);
        for u in script.iter().take(wal_txns) {
            engine.apply(u).expect("script update applies");
        }
    } // dropped: the next open performs real recovery
    let wal_kib =
        std::fs::metadata(dir.join(strata_store::WAL_FILE)).map_or(0, |m| m.len()) as f64 / 1024.0;
    let t0 = Instant::now();
    let mut engine = open_cascade(&dir, strata_datalog::Program::new(), Durability::Buffered);
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let model_facts = engine.model().len();
    let t0 = Instant::now();
    engine.compact().expect("compaction succeeds");
    let compact_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot_kib =
        std::fs::metadata(dir.join(SNAPSHOT_FILE)).map_or(0, |m| m.len()) as f64 / 1024.0;
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryRow { wal_txns, wal_kib, recover_ms, model_facts, compact_ms, snapshot_kib }
}

fn write_json(path: &str, tp: &[ThroughputRow], rec: &[RecoveryRow]) {
    let mut out = String::from("{\n  \"bench\": \"exp_e10_persistence\",\n");
    out.push_str(
        "  \"description\": \"durable store: commit throughput (per-update vs batched fsync), \
         recovery time vs WAL length, snapshot+compaction cost\",\n",
    );
    out.push_str("  \"throughput\": [\n");
    for (i, r) in tp.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"updates\": {}, \"elapsed_ms\": {:.3}, \
             \"updates_per_sec\": {:.0}, \"wal_kib\": {:.1}}}{}\n",
            r.mode,
            r.updates,
            r.elapsed_ms,
            r.per_sec,
            r.wal_kib,
            if i + 1 == tp.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in rec.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"wal_txns\": {}, \"wal_kib\": {:.1}, \"recover_ms\": {:.3}, \
             \"model_facts\": {}, \"compact_ms\": {:.3}, \"snapshot_kib\": {:.1}}}{}\n",
            r.wal_txns,
            r.wal_kib,
            r.recover_ms,
            r.model_facts,
            r.compact_ms,
            r.snapshot_kib,
            if i + 1 == rec.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(String::as_str);

    banner("E10", "persistence: WAL commit throughput, recovery, compaction");
    let (papers, pc, script_len, batch, wal_lengths): (usize, usize, usize, usize, Vec<usize>) =
        if smoke {
            (40, 6, 60, 16, vec![20, 60])
        } else {
            (250, 25, 1000, 64, vec![100, 500, 1000, 4000])
        };
    let program = synth::conference(papers, pc, 42);
    let script = random_fact_script(
        &program,
        &ScriptConfig {
            len: script_len.max(wal_lengths.iter().copied().max().unwrap_or(0)),
            insert_prob: 0.6,
        },
        7,
    );

    let tp = vec![
        bench_throughput(
            "per_update_fsync",
            &script[..script_len.min(script.len())],
            1,
            Durability::Fsync,
            &program,
        ),
        bench_throughput(
            "batched_fsync",
            &script[..script_len.min(script.len())],
            batch,
            Durability::Fsync,
            &program,
        ),
        bench_throughput(
            "per_update_buffered",
            &script[..script_len.min(script.len())],
            1,
            Durability::Buffered,
            &program,
        ),
    ];
    println!(
        "{:<22} {:>8} {:>12} {:>14} {:>10}",
        "mode", "updates", "elapsed ms", "updates/sec", "wal KiB"
    );
    for r in &tp {
        println!(
            "{:<22} {:>8} {:>12.2} {:>14.0} {:>10.1}",
            r.mode, r.updates, r.elapsed_ms, r.per_sec, r.wal_kib
        );
    }

    let rec: Vec<RecoveryRow> = wal_lengths
        .iter()
        .map(|&n| bench_recovery(n.min(script.len()), &script, &program))
        .collect();
    println!(
        "\n{:>9} {:>9} {:>11} {:>12} {:>11} {:>13}",
        "wal txns", "wal KiB", "recover ms", "model facts", "compact ms", "snapshot KiB"
    );
    for r in &rec {
        println!(
            "{:>9} {:>9.1} {:>11.2} {:>12} {:>11.2} {:>13.1}",
            r.wal_txns, r.wal_kib, r.recover_ms, r.model_facts, r.compact_ms, r.snapshot_kib
        );
    }

    match (smoke, out_path) {
        (_, Some(p)) => write_json(p, &tp, &rec),
        (false, None) => write_json("BENCH_store.json", &tp, &rec),
        (true, None) => println!("\n--smoke: skipping BENCH_store.json"),
    }
}
