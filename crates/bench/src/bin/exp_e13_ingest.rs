//! E13 — what the ingest service buys: coalescing + group commit.
//!
//! Three measurements against the **durable cascade engine**
//! (fsync-on-commit, the production configuration):
//!
//! * **per-request vs coalesced-group throughput** — the same update
//!   stream (a) applied one update per transaction directly on the
//!   engine (one fsync each), (b) pushed through the ingest service,
//!   which coalesces and cuts watermark-sized groups, committing each
//!   group with one `apply_all` — one fsync per *group*.
//! * **multi-client scaling** — the same total stream split across 1–8
//!   producer threads submitting concurrently to one service; group
//!   commit amortizes the fsyncs across clients, so throughput should
//!   hold (or improve) as producers are added.
//!
//! Results go to `BENCH_service.json`. Usage:
//! `exp_e13_ingest [--smoke] [--out PATH]`; `--smoke` runs tiny sizes
//! (the CI bit-rot guard) and skips the file unless `--out` is given.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use strata_bench::banner;
use strata_core::registry::EngineRegistry;
use strata_core::{EngineBox, MaintenanceEngine, StorageSpec, Update};
use strata_service::{IngestConfig, Service};
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_e13_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_cascade(dir: &std::path::Path, program: strata_datalog::Program) -> EngineBox {
    EngineRegistry::standard()
        .build_with_storage("cascade", program, &StorageSpec::wal(dir.to_path_buf()))
        .expect("open durable cascade")
}

struct IngestRow {
    mode: String,
    updates: usize,
    elapsed_ms: f64,
    per_sec: f64,
    wal_txns: u64,
}

/// (a) the baseline: every update is its own durable transaction.
fn bench_per_update(script: &[Update], program: &strata_datalog::Program) -> IngestRow {
    let dir = scratch("per_update");
    let mut engine = durable_cascade(&dir, program.clone());
    let t0 = Instant::now();
    for u in script {
        let _ = engine.apply(u); // rejections are decisions, not failures
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let wal_txns = engine.durability().map_or(0, |d| d.wal_txns);
    let _ = std::fs::remove_dir_all(&dir);
    IngestRow {
        mode: "per_update_fsync".into(),
        updates: script.len(),
        elapsed_ms: elapsed * 1e3,
        per_sec: script.len() as f64 / elapsed,
        wal_txns,
    }
}

/// (b) the service: coalescing queue + group commit, `clients` producer
/// threads sharing one worker.
fn bench_service(
    label: &str,
    script: &[Update],
    clients: usize,
    program: &strata_datalog::Program,
) -> IngestRow {
    let dir = scratch(&format!("svc_{label}_{clients}"));
    let engine = durable_cascade(&dir, program.clone());
    let service = Arc::new(Service::start(
        engine,
        IngestConfig {
            max_group: 64,
            max_delay: Duration::from_millis(2),
            max_pending: 8192,
            ..IngestConfig::default()
        },
    ));
    let chunk = script.len().div_ceil(clients);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for part in script.chunks(chunk) {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let handles: Vec<_> = part.iter().map(|u| service.submit(u.clone())).collect();
                for h in handles {
                    h.wait();
                }
            });
        }
    });
    service.flush();
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = service.stats();
    let wal_txns = stats.durability.map_or(0, |d| d.wal_txns);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    IngestRow {
        mode: label.to_string(),
        updates: script.len(),
        elapsed_ms: elapsed * 1e3,
        per_sec: script.len() as f64 / elapsed,
        wal_txns,
    }
}

fn write_json(path: &str, ingest: &[IngestRow], scaling: &[IngestRow]) {
    let row = |r: &IngestRow, key: &str, last: bool| {
        format!(
            "    {{\"{key}\": \"{}\", \"updates\": {}, \"elapsed_ms\": {:.3}, \
             \"updates_per_sec\": {:.0}, \"wal_txns\": {}}}{}\n",
            r.mode,
            r.updates,
            r.elapsed_ms,
            r.per_sec,
            r.wal_txns,
            if last { "" } else { "," }
        )
    };
    let mut out = String::from("{\n  \"bench\": \"exp_e13_ingest\",\n");
    out.push_str(
        "  \"description\": \"ingest service: per-request vs coalesced group-commit throughput \
         (durable cascade, fsync), multi-client scaling\",\n",
    );
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"ingest\": [\n");
    for (i, r) in ingest.iter().enumerate() {
        out.push_str(&row(r, "mode", i + 1 == ingest.len()));
    }
    out.push_str("  ],\n  \"scaling\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        out.push_str(&row(r, "clients", i + 1 == scaling.len()));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(String::as_str);

    banner("E13", "ingest service: coalescing, group commit, multi-client scaling");
    let (papers, pc, script_len, client_counts): (usize, usize, usize, Vec<usize>) =
        if smoke { (40, 6, 120, vec![1, 2]) } else { (250, 25, 2000, vec![1, 2, 4, 8]) };
    let program = synth::conference(papers, pc, 42);
    let script =
        random_fact_script(&program, &ScriptConfig { len: script_len, insert_prob: 0.6 }, 7);

    let ingest = vec![
        bench_per_update(&script, &program),
        bench_service("service_coalesced", &script, 1, &program),
    ];
    println!(
        "{:<22} {:>8} {:>12} {:>14} {:>9}",
        "mode", "updates", "elapsed ms", "updates/sec", "wal txns"
    );
    for r in &ingest {
        println!(
            "{:<22} {:>8} {:>12.2} {:>14.0} {:>9}",
            r.mode, r.updates, r.elapsed_ms, r.per_sec, r.wal_txns
        );
    }
    let speedup = ingest[1].per_sec / ingest[0].per_sec;
    println!("coalesced group commit is {speedup:.1}x per-request throughput");

    let scaling: Vec<IngestRow> = client_counts
        .iter()
        .map(|&c| {
            let mut r = bench_service("clients", &script, c, &program);
            r.mode = c.to_string();
            r
        })
        .collect();
    println!(
        "\n{:>8} {:>8} {:>12} {:>14} {:>9}",
        "clients", "updates", "elapsed ms", "updates/sec", "wal txns"
    );
    for r in &scaling {
        println!(
            "{:>8} {:>8} {:>12.2} {:>14.0} {:>9}",
            r.mode, r.updates, r.elapsed_ms, r.per_sec, r.wal_txns
        );
    }

    match (smoke, out_path) {
        (_, Some(p)) => write_json(p, &ingest, &scaling),
        (false, None) => write_json("BENCH_service.json", &ingest, &scaling),
        (true, None) => println!("\n--smoke: skipping BENCH_service.json"),
    }
}
