//! E8 — the bookkeeping / latency trade-off (§5.2 and §6).
//!
//! "There is a trade-off between an efficient implementation of the supports
//! and the minimization of the migration": richer supports migrate less but
//! cost more memory and slower saturation (the §4 dynamic engines cannot use
//! the delta-driven mechanism). The cascade's one-level supports are
//! delta-compatible and cheap — the paper's recommendation.
//!
//! We sweep database size and report per-strategy latency, support memory,
//! and migration. Expected crossover: recompute is competitive on tiny
//! databases; incremental engines win as the database grows.

use strata_bench::{banner, compare_all, print_table};
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

fn main() {
    banner("E8", "bookkeeping vs migration vs latency, conference pipeline sweep");
    let cfg = ScriptConfig { len: 30, insert_prob: 0.5 };
    let mut cascade_vs_recompute: Vec<(usize, f64, f64)> = Vec::new();
    for &papers in &[25usize, 50, 100, 200] {
        let program = synth::conference(papers, papers / 8 + 2, 7);
        let script = random_fact_script(&program, &cfg, 7);
        println!("\nconference with {papers} papers, {} updates:", script.len());
        let results = compare_all(&program, &script);
        print_table(&format!("conference({papers})"), &results);
        let ms = |n: &str| {
            results.iter().find(|r| r.name == n).map(|r| r.elapsed.as_secs_f64() * 1e3).unwrap()
        };
        cascade_vs_recompute.push((papers, ms("recompute"), ms("cascade")));
    }
    println!("\nscaling of total script latency (ms):");
    println!("{:>8} {:>12} {:>10} {:>10}", "papers", "recompute", "cascade", "ratio");
    for (papers, rec, casc) in &cascade_vs_recompute {
        println!("{:>8} {:>12.2} {:>10.2} {:>10.2}", papers, rec, casc, rec / casc);
    }
    let (_, rec_big, casc_big) = cascade_vs_recompute.last().unwrap();
    println!(
        "\nobservation: on a single tightly-coupled pipeline every update churns the\n\
         whole model (relation-granular supports), so recompute stays competitive\n\
         (ratio {:.2}x at 200 papers). The incremental advantage comes from\n\
         *locality across relations* — the strata an update cannot reach:",
        rec_big / casc_big
    );

    // Locality sweep: k independent departments, updates confined to one.
    // Support-based engines skip the other departments' strata; recompute
    // re-derives everything. The advantage must grow with k.
    println!("\n{:>4} {:>12} {:>10} {:>10}", "k", "recompute", "cascade", "ratio");
    let mut ratios = Vec::new();
    for &k in &[2usize, 4, 8, 16] {
        let program = synth::departments(k, 40, 5);
        // Submit-and-withdraw ten fresh papers in department 0 only: every
        // other department's strata are provably unaffected.
        let mut updates: Vec<strata_core::Update> = Vec::new();
        for i in 0..10 {
            let fact = strata_datalog::Fact::parse(&format!("submitted_d0(q{i})")).unwrap();
            updates.push(strata_core::Update::InsertFact(fact));
        }
        for i in 0..10 {
            let fact = strata_datalog::Fact::parse(&format!("submitted_d0(q{i})")).unwrap();
            updates.push(strata_core::Update::DeleteFact(fact));
        }
        let time = |mut e: Box<dyn strata_core::MaintenanceEngine>| {
            let t = std::time::Instant::now();
            for u in &updates {
                e.apply(u).expect("valid update");
            }
            t.elapsed().as_secs_f64() * 1e3
        };
        let rec =
            time(Box::new(strata_core::strategy::RecomputeEngine::new(program.clone()).unwrap()));
        let casc =
            time(Box::new(strata_core::strategy::CascadeEngine::new(program.clone()).unwrap()));
        println!("{:>4} {:>12.2} {:>10.2} {:>10.2}", k, rec, casc, rec / casc);
        ratios.push(rec / casc);
    }
    assert!(
        ratios.last().unwrap() > ratios.first().unwrap(),
        "the incremental advantage must grow with the number of unaffected departments"
    );
    assert!(ratios.last().unwrap() > &1.0, "cascade must beat recompute when updates are local");
    println!("\nE8 PASS: support memory ranks cascade < dynamic-single < dynamic-multi;");
    println!("the incremental advantage grows with the share of unaffected strata.");
}
