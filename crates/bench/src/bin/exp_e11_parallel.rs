//! E11 — what per-stratum parallel saturation buys.
//!
//! Runs the same batched update workloads through the sequential `cascade`
//! engine and through `cascade-parallel` at 1/2/4/8 worker threads,
//! recording wall-clock time and the speedup over sequential. The engines
//! are bit-identical in results (gated by `tests/parallel_equivalence.rs`
//! and the CI `parallel-equivalence` job); this experiment measures the
//! wall-clock side of that trade. Workloads:
//!
//! * **tc_batch_insert** — a maintained transitive closure receiving a
//!   large edge batch: the recursive stratum re-saturates with big per-round
//!   deltas, the sharded hot path.
//! * **triple_join_negation** — a 3-literal join with negation fed a large
//!   EDB batch: one wide delta firing per rule, sharded across workers.
//! * **batch_update_mixed** — a reachability-complement database replaying
//!   a random insert/delete script in `apply_all` batches.
//!
//! Results go to `BENCH_parallel.json`, including `host_cpus` — speedups
//! are bounded by the physical cores of the machine that wrote the file
//! (a single-core host records ≈1× at every thread count; the numbers are
//! honest, not simulated).
//!
//! Usage: `exp_e11_parallel [--smoke] [--out PATH]`; `--smoke` runs tiny
//! sizes (the CI bit-rot guard) and skips the file unless `--out` is given.

use std::time::Instant;

use strata_bench::banner;
use strata_core::strategy::CascadeEngine;
use strata_core::{MaintenanceEngine, Parallelism, Update};
use strata_datalog::{Fact, Program};
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

/// A deterministic LCG for workload generation.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// One benchmark case: a program plus the update batches replayed onto it.
struct Workload {
    name: &'static str,
    params: String,
    program: Program,
    batches: Vec<Vec<Update>>,
}

fn tc_batch_insert(nodes: u64, base_edges: usize, batch_edges: usize) -> Workload {
    let mut lcg = Lcg(42);
    let mut src = String::new();
    for _ in 0..base_edges {
        src.push_str(&format!("e({}, {}). ", lcg.next() % nodes, lcg.next() % nodes));
    }
    src.push_str("p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).");
    let batch: Vec<Update> = (0..batch_edges)
        .map(|_| {
            Update::InsertFact(
                Fact::parse(&format!("e({}, {})", lcg.next() % nodes, lcg.next() % nodes)).unwrap(),
            )
        })
        .collect();
    Workload {
        name: "tc_batch_insert",
        params: format!("{nodes} nodes, {base_edges} base edges, {batch_edges}-edge batch"),
        program: Program::parse(&src).expect("generated TC program parses"),
        batches: vec![batch],
    }
}

fn triple_join_negation(domain: u64, per_rel: usize, batch_size: usize) -> Workload {
    let mut lcg = Lcg(7);
    let mut src = String::new();
    for rel in ["e", "f", "g"] {
        for _ in 0..per_rel {
            src.push_str(&format!("{rel}({}, {}). ", lcg.next() % domain, lcg.next() % domain));
        }
    }
    for _ in 0..(per_rel / 10) {
        src.push_str(&format!("blocked({}). ", lcg.next() % domain));
    }
    src.push_str("t(X, W) :- e(X, Y), f(Y, Z), g(Z, W), !blocked(X).");
    let batch: Vec<Update> = (0..batch_size)
        .map(|_| {
            Update::InsertFact(
                Fact::parse(&format!("e({}, {})", lcg.next() % domain, lcg.next() % domain))
                    .unwrap(),
            )
        })
        .collect();
    Workload {
        name: "triple_join_negation",
        params: format!("domain {domain}, {per_rel}/rel, {batch_size}-fact batch"),
        program: Program::parse(&src).expect("generated join program parses"),
        batches: vec![batch],
    }
}

fn batch_update_mixed(nodes: usize, edges: usize, script_len: usize, batch: usize) -> Workload {
    let program = synth::tc_complement(nodes, edges, 23);
    let script =
        random_fact_script(&program, &ScriptConfig { len: script_len, insert_prob: 0.6 }, 31);
    let batches: Vec<Vec<Update>> = script.chunks(batch).map(<[Update]>::to_vec).collect();
    Workload {
        name: "batch_update_mixed",
        params: format!("{nodes} nodes, {edges} edges, {script_len} updates in {batch}s"),
        program,
        batches,
    }
}

/// Times `reps` runs of the workload on a fresh engine each time (build
/// excluded from the clock) and returns the best wall-clock seconds plus
/// the final model for agreement checks.
fn run_case(w: &Workload, threads: Option<usize>, reps: usize) -> (f64, Vec<strata_datalog::Fact>) {
    let mut best = f64::INFINITY;
    let mut model = Vec::new();
    for _ in 0..reps {
        let mut engine = match threads {
            None => CascadeEngine::new(w.program.clone()).expect("workload is stratified"),
            Some(t) => CascadeEngine::parallel(w.program.clone(), Parallelism::new(t))
                .expect("workload is stratified"),
        };
        let t0 = Instant::now();
        for batch in &w.batches {
            engine.apply_all(batch).expect("bench batch applies");
        }
        best = best.min(t0.elapsed().as_secs_f64());
        model = engine.model().sorted_facts();
    }
    (best, model)
}

struct Row {
    workload: &'static str,
    params: String,
    seq_ms: f64,
    /// `(threads, ms, speedup)` per measured thread count.
    per_threads: Vec<(usize, f64, f64)>,
}

fn bench_workload(w: &Workload, thread_counts: &[usize], reps: usize) -> Row {
    let (seq_s, seq_model) = run_case(w, None, reps);
    let per_threads = thread_counts
        .iter()
        .map(|&t| {
            let (s, model) = run_case(w, Some(t), reps);
            assert_eq!(model, seq_model, "[{} x{t}] parallel engine diverged", w.name);
            (t, s * 1e3, seq_s / s)
        })
        .collect();
    Row { workload: w.name, params: w.params.clone(), seq_ms: seq_s * 1e3, per_threads }
}

fn write_json(path: &str, host_cpus: usize, rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"exp_e11_parallel\",\n");
    out.push_str(
        "  \"description\": \"per-stratum parallel saturation: cascade-parallel at 1/2/4/8 \
         worker threads vs the sequential cascade engine (bit-identical results; wall clock \
         only)\",\n",
    );
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"unit\": \"ms, best-of-N wall clock; speedup = seq_ms / ms\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"seq_ms\": {:.3}, \"threads\": [",
            r.workload, r.params, r.seq_ms
        ));
        for (j, (t, ms, speedup)) in r.per_threads.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"threads\": {t}, \"ms\": {ms:.3}, \"speedup\": {speedup:.2}}}",
                if j == 0 { "" } else { ", " }
            ));
        }
        out.push_str(&format!("]}}{}\n", if i + 1 == rows.len() { "" } else { "," }));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(String::as_str);

    banner("E11", "per-stratum parallel saturation: cascade-parallel vs cascade");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cpus: {host_cpus}\n");

    let (workloads, thread_counts, reps): (Vec<Workload>, Vec<usize>, usize) = if smoke {
        (
            vec![
                tc_batch_insert(24, 60, 80),
                triple_join_negation(12, 120, 80),
                batch_update_mixed(6, 10, 24, 8),
            ],
            vec![1, 2],
            2,
        )
    } else {
        (
            vec![
                tc_batch_insert(96, 280, 200),
                triple_join_negation(48, 2400, 400),
                batch_update_mixed(11, 30, 120, 24),
            ],
            vec![1, 2, 4, 8],
            5,
        )
    };

    let rows: Vec<Row> =
        workloads.iter().map(|w| bench_workload(w, &thread_counts, reps)).collect();

    println!("{:<22} {:>10} {:>9} {:>10} {:>9}", "workload", "seq ms", "threads", "ms", "speedup");
    for r in &rows {
        for (i, (t, ms, speedup)) in r.per_threads.iter().enumerate() {
            if i == 0 {
                println!(
                    "{:<22} {:>10.2} {:>9} {:>10.2} {:>8.2}x",
                    r.workload, r.seq_ms, t, ms, speedup
                );
            } else {
                println!("{:<22} {:>10} {:>9} {:>10.2} {:>8.2}x", "", "", t, ms, speedup);
            }
        }
    }

    match (smoke, out_path) {
        (_, Some(p)) => write_json(p, host_cpus, &rows),
        (false, None) => write_json("BENCH_parallel.json", host_cpus, &rows),
        (true, None) => println!("\n--smoke: skipping BENCH_parallel.json"),
    }
}
