//! E4 — §4.2 Example 3 (CONGRESS): keeping the pairwise-smaller support
//! avoids migration.
//!
//! `accepted(l)` has two derivations: via `accepted(X) :- submitted(X),
//! !rejected(X)` (support Pos = {submitted, -rejected}, Neg = {+rejected})
//! and via `accepted(l) :- submitted(l)` (support Pos = {submitted},
//! Neg = ∅). "Clearly, the latter pair is preferable because an insertion of
//! a fact rejected(i) will not lead then to a migration of accepted(l)."

use strata_bench::banner;
use strata_core::strategy::{DynamicSingleEngine, SingleConfig};
use strata_core::verify::assert_matches_ground_truth;
use strata_core::{MaintenanceEngine, Update};
use strata_datalog::Fact;
use strata_workload::paper;

fn main() {
    banner("E4", "CONGRESS (Example 3): prefer the pairwise-smaller support");
    let l = 4;
    let program = paper::congress(l);
    let update = Update::InsertFact(Fact::parse(&format!("rejected({l})")).unwrap());
    println!("database: CONGRESS with l = {l}; update: {update}\n");
    println!(
        "{:<26} {:>8} {:>9} {:>22}",
        "variant", "removed", "migrated", "accepted(l) migrated?"
    );

    let mut outcomes = Vec::new();
    for (label, prefer) in [("prefer-smaller (paper)", true), ("keep-first (ablation)", false)] {
        let mut engine = DynamicSingleEngine::with_config(
            program.clone(),
            SingleConfig { signed: true, prefer_smaller: prefer },
        )
        .unwrap();
        let target = Fact::parse(&format!("accepted({l})")).unwrap();
        let sup = engine.support_of(&target).unwrap().clone();
        let stats = engine.apply(&update).unwrap();
        assert!(engine.model().contains(&target));
        assert_matches_ground_truth(&engine);
        // With the smaller support kept, accepted(l)'s Neg' is empty, so it
        // cannot be removed by the insertion.
        let target_migrated = stats.removed == l; // l-1 derived others + accepted(l)
        println!(
            "{:<26} {:>8} {:>9} {:>22}",
            label,
            stats.removed,
            stats.migrated,
            if target_migrated { "yes (migrated)" } else { "no" }
        );
        outcomes.push((prefer, target_migrated, sup));
    }
    let (_, migrated_with_pref, sup) = &outcomes[0];
    assert!(!migrated_with_pref, "with the preference, accepted(l) must not migrate");
    assert!(
        sup.neg.plain.is_empty() && sup.neg.signed.is_empty(),
        "the kept support must be the smaller pair (Neg = ∅)"
    );
    let (_, migrated_without, _) = &outcomes[1];
    assert!(
        *migrated_without,
        "without the preference the first (larger) support is kept, so accepted(l) migrates"
    );
    println!("\nE4 PASS: the pairwise-smaller preference saves accepted(l) from migration.");
}
