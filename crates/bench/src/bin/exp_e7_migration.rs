//! E7 — the §§4–5 comparative claim, measured: total migration per strategy
//! over randomized update scripts on three workload families.
//!
//! Expected shape: migration decreases as supports get more precise,
//!
//! ```text
//! static ≥ dynamic-single ≥ dynamic-multi ≥ 0,
//! ```
//!
//! with the cascade comparable to dynamic-multi at far lower bookkeeping,
//! and recompute trivially at zero (it never removes erroneously).

use strata_bench::{banner, compare_all, print_table};
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

fn main() {
    banner("E7", "migration across strategies, randomized update scripts");
    let workloads = vec![
        ("conference(80, 10)", synth::conference(80, 10, 11)),
        ("tc_complement(12, 20)", synth::tc_complement(12, 20, 12)),
        ("bom(4, 3)", synth::bom(4, 3, 13)),
    ];
    let cfg = ScriptConfig { len: 60, insert_prob: 0.5 };

    let mut orderings_ok = true;
    for (name, program) in &workloads {
        let script = random_fact_script(program, &cfg, 99);
        println!("\nworkload {name}: {} updates", script.len());
        let results = compare_all(program, &script);
        print_table(name, &results);
        let by_name =
            |n: &str| results.iter().find(|r| r.name == n).map(|r| r.total.migrated).unwrap();
        let (stat, single, multi, casc) = (
            by_name("static"),
            by_name("dynamic-single"),
            by_name("dynamic-multi"),
            by_name("cascade"),
        );
        let ok = stat >= single && single >= multi;
        println!(
            "  ordering static({stat}) ≥ single({single}) ≥ multi({multi}): {}  | cascade = {casc}",
            if ok { "holds" } else { "VIOLATED" }
        );
        orderings_ok &= ok;
    }
    assert!(orderings_ok, "the paper's migration ordering must hold on every workload");
    println!("\nE7 PASS: migration ordering static ≥ dynamic-single ≥ dynamic-multi holds,");
    println!("all engines agree on every final model.");
}
