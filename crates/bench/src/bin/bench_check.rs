//! `bench_check` — the CI bench-regression guard.
//!
//! Compares a freshly measured `BENCH_*.json` (produced by running the
//! matching experiment binary with `--smoke --out <path>`) against the
//! committed **smoke baseline** (`BENCH_<kind>.smoke.json`, regenerated
//! with the same `--smoke --out` invocation) and exits non-zero if any
//! **headline metric** regressed more than [`TOLERANCE`]× (2×). Smoke runs
//! are compared to smoke baselines — ratios shift with workload size, so
//! full-size baselines would false-alarm. Headline metrics are chosen to
//! be *ratios*, not absolute times, so the check is meaningful across
//! machines of different speed:
//!
//! * `plan`     — per workload, the compiled-vs-interpreted `speedup`.
//! * `store`    — batched-fsync vs per-update-fsync commit throughput.
//! * `parallel` — per workload, the best multi-thread speedup over the
//!   sequential engine. (Bounded by host cores: a baseline recorded on a
//!   many-core box checked on a single-core runner would always "regress",
//!   which is why CI runs this as a separate, non-required job.)
//! * `service`  — coalesced group-commit vs per-request ingest throughput
//!   (the `strata-service` headline ratio).
//! * `shard`    — sharded vs single-worker ingest throughput (the e16
//!   stratum-partitioned parallel-commit ratio). Near 1.0 on one core —
//!   there it bounds router/fan-out overhead rather than parallel wins.
//! * `service-obs` — the observability overhead guard: the same e13 headline
//!   ratio, but framed as "instrumented service vs committed baseline". The
//!   `strata_obs` registry and trace ring are compiled in and always on, so a
//!   fresh `exp_e13_ingest --smoke` run *is* the instrumented measurement;
//!   if metrics + tracing cost more than [`TOLERANCE`]× of the committed
//!   smoke ratio, this kind fails.
//!
//! Usage:
//!
//! ```text
//! bench_check <plan|store|parallel|service|service-obs|shard|read> <baseline.json> <fresh.json>
//! ```

use std::process::ExitCode;

use strata_bench::json::{parse, Json};

/// A fresh headline metric must be at least `baseline / TOLERANCE`.
const TOLERANCE: f64 = 2.0;

/// One comparable headline metric.
struct Metric {
    label: String,
    value: f64,
}

fn load(path: &str) -> Result<Json, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

/// `plan`: the per-workload compiled-vs-interpreted speedup.
fn plan_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let results = doc.get("results").ok_or("missing `results`")?.items();
    results
        .iter()
        .map(|r| {
            let workload = r.get("workload").and_then(Json::as_str).ok_or("missing workload")?;
            let speedup = r.get("speedup").and_then(Json::as_f64).ok_or("missing speedup")?;
            Ok(Metric { label: format!("speedup[{workload}]"), value: speedup })
        })
        .collect()
}

/// `store`: batched-fsync over per-update-fsync commit throughput.
fn store_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let throughput = doc.get("throughput").ok_or("missing `throughput`")?.items();
    let rate = |mode: &str| -> Result<f64, String> {
        throughput
            .iter()
            .find(|r| r.get("mode").and_then(Json::as_str) == Some(mode))
            .and_then(|r| r.get("updates_per_sec").and_then(Json::as_f64))
            .ok_or_else(|| format!("missing updates_per_sec for mode {mode}"))
    };
    let ratio = rate("batched_fsync")? / rate("per_update_fsync")?;
    Ok(vec![Metric { label: "batched/per-update fsync throughput".into(), value: ratio }])
}

/// `parallel`: the best multi-thread speedup per workload.
fn parallel_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let results = doc.get("results").ok_or("missing `results`")?.items();
    results
        .iter()
        .map(|r| {
            let workload = r.get("workload").and_then(Json::as_str).ok_or("missing workload")?;
            let best = r
                .get("threads")
                .ok_or("missing threads")?
                .items()
                .iter()
                .filter_map(|t| t.get("speedup").and_then(Json::as_f64))
                .fold(f64::NEG_INFINITY, f64::max);
            if best == f64::NEG_INFINITY {
                return Err(format!("no thread entries for {workload}"));
            }
            Ok(Metric { label: format!("best speedup[{workload}]"), value: best })
        })
        .collect()
}

/// `read`: the MVCC read-path headlines — snapshot-over-mutex reads per
/// second at the largest commit batch, and snapshot flatness (largest
/// batch over smallest; ~1.0 when snapshot reads are independent of the
/// in-flight commit size).
fn read_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let rows = doc.get("read").ok_or("missing `read`")?.items();
    let cell = |mode: &str, batch: f64| -> Result<f64, String> {
        rows.iter()
            .find(|r| {
                r.get("mode").and_then(Json::as_str) == Some(mode)
                    && r.get("batch").and_then(Json::as_f64) == Some(batch)
            })
            .and_then(|r| r.get("reads_per_sec").and_then(Json::as_f64))
            .ok_or_else(|| format!("missing reads_per_sec for {mode} at batch {batch}"))
    };
    let batches: Vec<f64> =
        rows.iter().filter_map(|r| r.get("batch").and_then(Json::as_f64)).collect();
    let largest = batches.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let smallest = batches.iter().copied().fold(f64::INFINITY, f64::min);
    if !largest.is_finite() || !smallest.is_finite() {
        return Err("no read rows".into());
    }
    Ok(vec![
        Metric {
            label: "snapshot/mutex reads at largest batch".into(),
            value: cell("snapshot", largest)? / cell("mutex", largest)?,
        },
        Metric {
            label: "snapshot flatness largest/smallest batch".into(),
            value: cell("snapshot", largest)? / cell("snapshot", smallest)?,
        },
    ])
}

/// `recovery`: the per-row bulk-over-engine replay speedup (e15). Ratios
/// of two wall times on the same machine, so cross-machine comparable.
fn recovery_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let rows = doc.get("recovery").ok_or("missing `recovery`")?.items();
    if rows.is_empty() {
        return Err("no recovery rows".into());
    }
    rows.iter()
        .map(|r| {
            let txns = r.get("wal_txns").and_then(Json::as_f64).ok_or("missing wal_txns")?;
            let speedup = r.get("speedup").and_then(Json::as_f64).ok_or("missing speedup")?;
            Ok(Metric { label: format!("bulk/engine replay[{txns} txns]"), value: speedup })
        })
        .collect()
}

/// `service`: coalesced group-commit over per-request ingest throughput.
fn service_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let ingest = doc.get("ingest").ok_or("missing `ingest`")?.items();
    let rate = |mode: &str| -> Result<f64, String> {
        ingest
            .iter()
            .find(|r| r.get("mode").and_then(Json::as_str) == Some(mode))
            .and_then(|r| r.get("updates_per_sec").and_then(Json::as_f64))
            .ok_or_else(|| format!("missing updates_per_sec for mode {mode}"))
    };
    let ratio = rate("service_coalesced")? / rate("per_update_fsync")?;
    Ok(vec![Metric { label: "coalesced/per-request ingest throughput".into(), value: ratio }])
}

/// `service-obs`: the observability overhead guard. Same extraction as
/// `service` — the fresh run carries the always-on `strata_obs`
/// instrumentation, so "fresh ratio ≥ baseline ratio / TOLERANCE" bounds the
/// throughput cost of metrics + tracing — but labeled distinctly so a CI
/// failure reads as an instrumentation-overhead regression, not a
/// coalescing regression.
fn service_obs_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    Ok(service_metrics(doc)?
        .into_iter()
        .map(|m| Metric { label: format!("instrumented {}", m.label), value: m.value })
        .collect())
}

/// `shard`: sharded over single-worker ingest throughput (e16). A ratio
/// of two wall times on the same machine, so cross-machine comparable;
/// on a single-core host it sits near 1.0 and guards the router +
/// barrier overhead rather than a parallelism win.
fn shard_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let rows = doc.get("shard").ok_or("missing `shard`")?.items();
    let rate = |mode: &str| -> Result<f64, String> {
        rows.iter()
            .find(|r| r.get("mode").and_then(Json::as_str) == Some(mode))
            .and_then(|r| r.get("updates_per_sec").and_then(Json::as_f64))
            .ok_or_else(|| format!("missing updates_per_sec for mode {mode}"))
    };
    let ratio = rate("sharded")? / rate("single_worker")?;
    Ok(vec![Metric { label: "sharded/single-worker ingest throughput".into(), value: ratio }])
}

fn metrics(kind: &str, doc: &Json) -> Result<Vec<Metric>, String> {
    match kind {
        "plan" => plan_metrics(doc),
        "store" => store_metrics(doc),
        "parallel" => parallel_metrics(doc),
        "service" => service_metrics(doc),
        "service-obs" => service_obs_metrics(doc),
        "shard" => shard_metrics(doc),
        "read" => read_metrics(doc),
        "recovery" => recovery_metrics(doc),
        other => Err(format!(
            "unknown kind `{other}` (plan | store | parallel | service | service-obs | shard | \
             read | recovery)"
        )),
    }
}

fn check(kind: &str, baseline_path: &str, fresh_path: &str) -> Result<bool, String> {
    let baseline = metrics(kind, &load(baseline_path)?)?;
    let fresh = metrics(kind, &load(fresh_path)?)?;
    let mut ok = true;
    for b in &baseline {
        let Some(f) = fresh.iter().find(|m| m.label == b.label) else {
            println!("MISSING  {:<40} (in baseline, absent from fresh run)", b.label);
            ok = false;
            continue;
        };
        let floor = b.value / TOLERANCE;
        let verdict = if f.value >= floor { "ok      " } else { "REGRESSED" };
        println!(
            "{verdict} {:<40} baseline {:.2}, fresh {:.2} (floor {:.2})",
            b.label, b.value, f.value, floor
        );
        if f.value < floor {
            ok = false;
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [kind, baseline, fresh] = args.as_slice() else {
        eprintln!(
            "usage: bench_check <plan|store|parallel|service|service-obs|shard|read> \
             <baseline.json> <fresh.json>"
        );
        return ExitCode::from(2);
    };
    match check(kind, baseline, fresh) {
        Ok(true) => {
            println!("\nbench_check: {kind} headline metrics within {TOLERANCE}x of baseline");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("\nbench_check: {kind} headline metrics regressed more than {TOLERANCE}x");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(src: &str) -> Json {
        parse(src).unwrap()
    }

    #[test]
    fn plan_passes_within_tolerance_and_fails_beyond() {
        let base = doc(r#"{"results": [{"workload": "tc", "speedup": 4.0}]}"#);
        let good = doc(r#"{"results": [{"workload": "tc", "speedup": 2.1}]}"#);
        let bad = doc(r#"{"results": [{"workload": "tc", "speedup": 1.9}]}"#);
        let bm = plan_metrics(&base).unwrap();
        assert_eq!(bm.len(), 1);
        assert!(plan_metrics(&good).unwrap()[0].value >= bm[0].value / TOLERANCE);
        assert!(plan_metrics(&bad).unwrap()[0].value < bm[0].value / TOLERANCE);
    }

    #[test]
    fn store_metric_is_the_fsync_ratio() {
        let base = doc(r#"{"throughput": [
                {"mode": "per_update_fsync", "updates_per_sec": 100},
                {"mode": "batched_fsync", "updates_per_sec": 1800},
                {"mode": "per_update_buffered", "updates_per_sec": 9000}
            ]}"#);
        let m = store_metrics(&base).unwrap();
        assert_eq!(m.len(), 1);
        assert!((m[0].value - 18.0).abs() < 1e-9);
        assert!(store_metrics(&doc(r#"{"throughput": []}"#)).is_err());
    }

    #[test]
    fn service_metric_is_the_coalescing_ratio() {
        let base = doc(r#"{"ingest": [
                {"mode": "per_update_fsync", "updates_per_sec": 900},
                {"mode": "service_coalesced", "updates_per_sec": 10800}
            ]}"#);
        let m = service_metrics(&base).unwrap();
        assert_eq!(m.len(), 1);
        assert!((m[0].value - 12.0).abs() < 1e-9);
        assert!(service_metrics(&doc(r#"{"ingest": []}"#)).is_err());
        assert!(service_metrics(&doc(r#"{}"#)).is_err());
    }

    #[test]
    fn service_obs_metric_relabels_the_same_ratio() {
        let base = doc(r#"{"ingest": [
                {"mode": "per_update_fsync", "updates_per_sec": 900},
                {"mode": "service_coalesced", "updates_per_sec": 10800}
            ]}"#);
        let m = service_obs_metrics(&base).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].label, "instrumented coalesced/per-request ingest throughput");
        assert!((m[0].value - 12.0).abs() < 1e-9);
        // The kind is routed through the dispatcher too.
        assert_eq!(metrics("service-obs", &base).unwrap()[0].label, m[0].label);
        assert!(service_obs_metrics(&doc(r#"{}"#)).is_err());
    }

    #[test]
    fn shard_metric_is_the_parallel_commit_ratio() {
        let base = doc(r#"{"shard": [
                {"mode": "single_worker", "shards": 1, "updates_per_sec": 4000},
                {"mode": "sharded", "shards": 4, "updates_per_sec": 10000}
            ]}"#);
        let m = shard_metrics(&base).unwrap();
        assert_eq!(m.len(), 1);
        assert!((m[0].value - 2.5).abs() < 1e-9);
        assert!(shard_metrics(&doc(r#"{"shard": []}"#)).is_err());
        assert!(shard_metrics(&doc(r#"{}"#)).is_err());
        // The kind is routed through the dispatcher too.
        assert_eq!(metrics("shard", &base).unwrap()[0].label, m[0].label);
    }

    #[test]
    fn read_metrics_are_the_snapshot_ratios() {
        let base = doc(r#"{"read": [
                {"mode": "mutex", "batch": 4, "reads_per_sec": 30000},
                {"mode": "snapshot", "batch": 4, "reads_per_sec": 54000},
                {"mode": "mutex", "batch": 64, "reads_per_sec": 6000},
                {"mode": "snapshot", "batch": 64, "reads_per_sec": 27000}
            ]}"#);
        let m = read_metrics(&base).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m[0].value - 4.5).abs() < 1e-9, "snapshot/mutex at batch 64");
        assert!((m[1].value - 0.5).abs() < 1e-9, "snapshot flatness 4 -> 64");
        assert!(read_metrics(&doc(r#"{"read": []}"#)).is_err());
        assert!(read_metrics(&doc(r#"{}"#)).is_err());
    }

    #[test]
    fn parallel_metric_is_the_best_thread_speedup() {
        let base = doc(r#"{"results": [{"workload": "tc", "seq_ms": 10.0, "threads": [
                {"threads": 1, "ms": 10.5, "speedup": 0.95},
                {"threads": 4, "ms": 4.0, "speedup": 2.5}
            ]}]}"#);
        let m = parallel_metrics(&base).unwrap();
        assert_eq!(m.len(), 1);
        assert!((m[0].value - 2.5).abs() < 1e-9);
    }

    #[test]
    fn recovery_metrics_are_the_per_row_speedups() {
        let base = doc(r#"{"recovery": [
                {"wal_txns": 30, "engine_ms": 50.0, "bulk_ms": 2.0, "speedup": 25.0},
                {"wal_txns": 90, "engine_ms": 200.0, "bulk_ms": 4.0, "speedup": 50.0}
            ]}"#);
        let m = recovery_metrics(&base).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].label, "bulk/engine replay[30 txns]");
        assert!((m[0].value - 25.0).abs() < 1e-9);
        assert!((m[1].value - 50.0).abs() < 1e-9);
        assert!(recovery_metrics(&doc(r#"{"recovery": []}"#)).is_err());
        assert!(recovery_metrics(&doc(r#"{}"#)).is_err());
        // Routed through the dispatcher too.
        assert_eq!(metrics("recovery", &base).unwrap().len(), 2);
    }

    #[test]
    fn check_compares_files_end_to_end() {
        let dir = std::env::temp_dir().join(format!("strata_benchcheck_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, r#"{"results": [{"workload": "tc", "speedup": 4.0}]}"#).unwrap();
        std::fs::write(&fresh, r#"{"results": [{"workload": "tc", "speedup": 3.0}]}"#).unwrap();
        assert!(check("plan", base.to_str().unwrap(), fresh.to_str().unwrap()).unwrap());
        std::fs::write(&fresh, r#"{"results": [{"workload": "tc", "speedup": 0.5}]}"#).unwrap();
        assert!(!check("plan", base.to_str().unwrap(), fresh.to_str().unwrap()).unwrap());
        // A fresh run missing a baseline workload fails the check.
        std::fs::write(&fresh, r#"{"results": []}"#).unwrap();
        assert!(!check("plan", base.to_str().unwrap(), fresh.to_str().unwrap()).unwrap());
        assert!(check("nonsense", base.to_str().unwrap(), fresh.to_str().unwrap()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
