//! E15 — what bulk replay buys at recovery time.
//!
//! The same store (cascade inner engine, conference workload, per-update
//! transactions committed with buffered durability) is opened twice per
//! WAL length:
//!
//! * **engine replay** ([`ReplayMode::Engine`]) — every committed
//!   transaction re-runs through the maintenance engine's own entry
//!   points, one incremental belief-revision round per transaction;
//! * **bulk replay** ([`ReplayMode::Bulk`]) — the committed suffix folds
//!   into the program as pure data and the engine is built once, computing
//!   the model in a single saturation.
//!
//! Both recoveries must agree on the model (asserted here); the headline
//! is the per-row `speedup` = engine ms / bulk ms. Results go to
//! `BENCH_recovery.json`. Usage: `exp_e15_recovery [--smoke] [--out PATH]`;
//! `--smoke` runs tiny sizes (the CI bit-rot guard) and skips the file
//! unless `--out` is given.

use std::path::PathBuf;
use std::time::Instant;

use strata_bench::banner;
use strata_core::durable::{DurableEngine, ReplayMode, WalSpec};
use strata_core::registry::EngineRegistry;
use strata_core::{MaintenanceEngine, Update};
use strata_datalog::{Fact, Program};
use strata_store::Durability;
use strata_workload::script::{random_fact_script, ScriptConfig};
use strata_workload::synth;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_e15_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(dir: &std::path::Path, replay: ReplayMode) -> WalSpec {
    let mut spec = WalSpec::new(dir);
    spec.fsync = Durability::Buffered;
    spec.replay = replay;
    spec
}

fn open(dir: &std::path::Path, replay: ReplayMode, program: Program) -> DurableEngine {
    let registry = EngineRegistry::standard();
    DurableEngine::open_spec(
        &spec(dir, replay),
        "cascade",
        registry.ctor("cascade").unwrap(),
        program,
        None,
    )
    .expect("open durable engine")
}

struct Row {
    wal_txns: usize,
    wal_kib: f64,
    engine_ms: f64,
    bulk_ms: f64,
    speedup: f64,
    model_facts: usize,
}

fn bench_one(wal_txns: usize, script: &[Update], program: &Program) -> Row {
    let dir = scratch(&format!("rec_{wal_txns}"));
    {
        let mut engine = open(&dir, ReplayMode::Engine, program.clone());
        for u in script.iter().take(wal_txns) {
            engine.apply(u).expect("script update applies");
        }
    } // dropped: every open below performs real recovery
    let wal_kib =
        std::fs::metadata(dir.join(strata_store::WAL_FILE)).map_or(0, |m| m.len()) as f64 / 1024.0;

    let t0 = Instant::now();
    let via_engine = open(&dir, ReplayMode::Engine, Program::new());
    let engine_ms = t0.elapsed().as_secs_f64() * 1e3;
    let expected: Vec<Fact> = via_engine.model().sorted_facts();
    drop(via_engine);

    let t0 = Instant::now();
    let via_bulk = open(&dir, ReplayMode::Bulk, Program::new());
    let bulk_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(via_bulk.model().sorted_facts(), expected, "replay modes must agree on the model");
    let model_facts = expected.len();
    drop(via_bulk);

    let _ = std::fs::remove_dir_all(&dir);
    Row { wal_txns, wal_kib, engine_ms, bulk_ms, speedup: engine_ms / bulk_ms, model_facts }
}

fn write_json(path: &str, rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"exp_e15_recovery\",\n");
    out.push_str(
        "  \"description\": \"recovery: engine replay (one belief-revision round per committed \
         transaction) vs bulk replay (fold the WAL, build the engine once)\",\n",
    );
    out.push_str("  \"recovery\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"wal_txns\": {}, \"wal_kib\": {:.1}, \"engine_ms\": {:.3}, \
             \"bulk_ms\": {:.3}, \"speedup\": {:.2}, \"model_facts\": {}}}{}\n",
            r.wal_txns,
            r.wal_kib,
            r.engine_ms,
            r.bulk_ms,
            r.speedup,
            r.model_facts,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(String::as_str);

    banner("E15", "recovery: bulk WAL fold vs per-transaction engine replay");
    let (papers, pc, wal_lengths): (usize, usize, Vec<usize>) =
        if smoke { (40, 6, vec![30, 90]) } else { (250, 25, vec![250, 1000, 4000]) };
    let program = synth::conference(papers, pc, 42);
    let script = random_fact_script(
        &program,
        &ScriptConfig { len: wal_lengths.iter().copied().max().unwrap_or(0), insert_prob: 0.6 },
        7,
    );

    let rows: Vec<Row> =
        wal_lengths.iter().map(|&n| bench_one(n.min(script.len()), &script, &program)).collect();
    println!(
        "{:>9} {:>9} {:>11} {:>9} {:>9} {:>12}",
        "wal txns", "wal KiB", "engine ms", "bulk ms", "speedup", "model facts"
    );
    for r in &rows {
        println!(
            "{:>9} {:>9.1} {:>11.2} {:>9.2} {:>8.1}x {:>12}",
            r.wal_txns, r.wal_kib, r.engine_ms, r.bulk_ms, r.speedup, r.model_facts
        );
    }

    match (smoke, out_path) {
        (_, Some(p)) => write_json(p, &rows),
        (false, None) => write_json("BENCH_recovery.json", &rows),
        (true, None) => println!("\n--smoke: skipping BENCH_recovery.json"),
    }
}
