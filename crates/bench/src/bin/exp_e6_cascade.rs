//! E6 — §5.1: the cascade avoids the removal of `q` entirely.
//!
//! `P = {r ← p, q ← r, q ← ¬p}`, `M(P) = {q}`. On `INSERT(p)`:
//!
//! * §4.3 (global removal, then re-saturation) removes `q`, inserts `p` and
//!   `r`, and finally re-inserts `q` — one migration;
//! * the cascade processes strata in order, so by the time `q`'s stratum is
//!   reached, the new derivation `q ← r` is available and `q` survives.
//!
//! We also run the cascade with pre-saturation disabled: the paper's
//! pseudocode order (REMOVE before SATURATE) then migrates `q` exactly like
//! §4.3 — see the reconstruction note in `strata_core::strategy::cascade`.

use strata_bench::banner;
use strata_core::strategy::{CascadeConfig, CascadeEngine, DynamicMultiEngine};
use strata_core::verify::assert_matches_ground_truth;
use strata_core::{MaintenanceEngine, Update};
use strata_datalog::Fact;
use strata_workload::paper;

fn main() {
    banner("E6", "cascade (§5.1): INSERT(p) into {r ← p, q ← r, q ← ¬p}");
    let program = paper::cascade_demo();
    let update = Update::InsertFact(Fact::parse("p").unwrap());
    println!("M(P) = {{q}}; update: {update}\n");
    println!("{:<28} {:>8} {:>9} {:>14}", "strategy", "removed", "migrated", "q removed?");

    let mut multi = DynamicMultiEngine::new(program.clone()).unwrap();
    let s_multi = multi.apply(&update).unwrap();
    assert_matches_ground_truth(&multi);
    println!(
        "{:<28} {:>8} {:>9} {:>14}",
        "dynamic-multi (§4.3)",
        s_multi.removed,
        s_multi.migrated,
        if s_multi.migrated > 0 { "yes, re-added" } else { "no" }
    );

    let mut literal = CascadeEngine::with_config(
        program.clone(),
        CascadeConfig { skip_unaffected: true, presaturate: false, ..CascadeConfig::default() },
    )
    .unwrap();
    let s_lit = literal.apply(&update).unwrap();
    assert_matches_ground_truth(&literal);
    println!(
        "{:<28} {:>8} {:>9} {:>14}",
        "cascade, literal pseudocode",
        s_lit.removed,
        s_lit.migrated,
        if s_lit.migrated > 0 { "yes, re-added" } else { "no" }
    );

    let mut cascade = CascadeEngine::new(program.clone()).unwrap();
    let s_casc = cascade.apply(&update).unwrap();
    assert_matches_ground_truth(&cascade);
    println!(
        "{:<28} {:>8} {:>9} {:>14}",
        "cascade (pre-saturation)",
        s_casc.removed,
        s_casc.migrated,
        if s_casc.removed == 0 { "no" } else { "yes" }
    );

    assert_eq!(s_multi.migrated, 1, "§4.3 must migrate q");
    assert_eq!(s_lit.migrated, 1, "the literal pseudocode also migrates q");
    assert_eq!(s_casc.removed, 0, "the cascade with pre-saturation must never remove q");
    assert_eq!(cascade.model().sorted_facts().len(), 3, "final model is {{p, q, r}} everywhere");
    println!("\nE6 PASS: the cascade realizes the paper's claimed improvement —");
    println!("with the pre-saturation reconstruction; the literal pseudocode does not.");
}
